//! Ingest-side latency reporting for the streaming engine.
//!
//! [`mbi_core::StreamingMbi`] exposes raw per-insert and per-chain-build
//! microsecond samples through [`mbi_core::EngineStats`]; this module folds
//! them into a serialisable [`IngestSummary`] (mean/p50/p99/max, plus seal
//! and inline-build counters) suitable for `results/*.json` next to the
//! query-side [`LatencySummary`].

use crate::latency::{LatencyRecorder, LatencySummary};
use mbi_core::EngineStats;
use serde::{Deserialize, Serialize};

/// A frozen ingest report (serialisable for `results/*.json`).
///
/// The headline numbers are the insert-latency percentiles: with the
/// streaming engine the insert path only appends to the tail and enqueues
/// sealed chains, so `insert.p99_us` staying near `insert.p50_us` is the
/// evidence that merge-chain builds were kept off the ingest path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IngestSummary {
    /// Per-insert wall-clock latency distribution, in microseconds.
    pub insert: LatencySummary,
    /// Per merge-chain graph-build latency distribution, in microseconds
    /// (`None` when no leaf sealed during the run).
    pub build: Option<LatencySummary>,
    /// Leaves sealed (= merge chains dispatched) over the run.
    pub seals: u64,
    /// Chains built inline on an inserting thread because the build queue
    /// was full (only non-zero under `Backpressure::BuildInline`).
    pub inline_builds: u64,
}

impl IngestSummary {
    /// Builds a summary from raw microsecond samples.
    ///
    /// # Panics
    ///
    /// Panics if `insert_micros` is empty — an ingest run with zero inserts
    /// has nothing to report.
    pub fn from_micros(
        insert_micros: &[u64],
        build_micros: &[u64],
        seals: u64,
        inline_builds: u64,
    ) -> Self {
        assert!(!insert_micros.is_empty(), "no insert latencies recorded");
        let mut insert = LatencyRecorder::with_capacity(insert_micros.len());
        for &us in insert_micros {
            insert.record_micros(us);
        }
        let build = (!build_micros.is_empty()).then(|| {
            let mut rec = LatencyRecorder::with_capacity(build_micros.len());
            for &us in build_micros {
                rec.record_micros(us);
            }
            rec.summary()
        });
        IngestSummary { insert: insert.summary(), build, seals, inline_builds }
    }

    /// Builds a summary straight from a [`StreamingMbi`] stats snapshot.
    ///
    /// [`StreamingMbi`]: mbi_core::StreamingMbi
    ///
    /// # Panics
    ///
    /// Panics if the engine recorded no insert latencies (no inserts ran, or
    /// `EngineConfig::record_insert_latency` was disabled).
    pub fn from_engine_stats(stats: &EngineStats) -> Self {
        IngestSummary::from_micros(
            &stats.insert_micros,
            &stats.build_micros,
            stats.seals as u64,
            stats.inline_builds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbi_core::{EngineConfig, MbiConfig, StreamingMbi};
    use mbi_math::Metric;

    #[test]
    fn from_micros_summarises_both_distributions() {
        let s = IngestSummary::from_micros(&[10, 20, 30, 40], &[1000, 3000], 2, 1);
        assert_eq!(s.insert.count, 4);
        assert_eq!(s.insert.mean_us, 25.0);
        assert_eq!(s.insert.max_us, 40.0);
        let build = s.build.expect("two build samples");
        assert_eq!(build.count, 2);
        assert_eq!(build.mean_us, 2000.0);
        assert_eq!(s.seals, 2);
        assert_eq!(s.inline_builds, 1);
    }

    #[test]
    fn no_builds_yields_none() {
        let s = IngestSummary::from_micros(&[5, 7], &[], 0, 0);
        assert!(s.build.is_none());
        assert_eq!(s.seals, 0);
    }

    #[test]
    #[should_panic(expected = "no insert latencies")]
    fn empty_inserts_panic() {
        IngestSummary::from_micros(&[], &[], 0, 0);
    }

    #[test]
    fn from_engine_stats_serialises_for_results_json() {
        let config = MbiConfig::new(2, Metric::Euclidean).with_leaf_size(16);
        let engine = StreamingMbi::with_engine_config(config, EngineConfig::default());
        for i in 0..40i64 {
            engine.insert(&[i as f32, -i as f32], i).unwrap();
        }
        engine.flush();
        let summary = IngestSummary::from_engine_stats(&engine.stats());
        assert_eq!(summary.insert.count, 40);
        assert_eq!(summary.seals, 2);
        assert_eq!(summary.build.as_ref().map(|b| b.count), Some(2));
        let json = serde_json::to_string(&summary).unwrap();
        for field in ["\"insert\"", "\"build\"", "\"seals\"", "\"p99_us\""] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
