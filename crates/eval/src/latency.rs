//! Per-query latency distributions.
//!
//! Mean QPS (what the paper reports) hides tail behaviour; production vector
//! stores care about p99. [`LatencyRecorder`] keeps every observation in
//! microsecond resolution (experiments run tens of thousands of queries at
//! most, so exact storage is cheaper than sketching) and reports exact
//! percentiles.

use mbi_math::OnlineStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Records per-query latencies and reports summary statistics.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    micros: Vec<u64>,
    stats: OnlineStats,
    sorted: bool,
}

/// A frozen latency summary (serialisable for `results/*.json`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Standard deviation in microseconds.
    pub stddev_us: f64,
    /// Minimum in microseconds.
    pub min_us: f64,
    /// Median (p50) in microseconds.
    pub p50_us: f64,
    /// 90th percentile in microseconds.
    pub p90_us: f64,
    /// 99th percentile in microseconds.
    pub p99_us: f64,
    /// Maximum in microseconds.
    pub max_us: f64,
    /// Implied queries per second (1e6 / mean_us).
    pub qps: f64,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder expecting about `n` observations.
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder { micros: Vec::with_capacity(n), stats: OnlineStats::new(), sorted: true }
    }

    /// Records one latency observation.
    pub fn record(&mut self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        self.record_micros(us);
    }

    /// Records one latency observation already expressed in microseconds —
    /// for replaying samples captured elsewhere (e.g.
    /// `mbi_core::EngineStats::insert_micros`).
    pub fn record_micros(&mut self, us: u64) {
        self.micros.push(us);
        self.stats.push(us as f64);
        self.sorted = false;
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.micros.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.micros.is_empty()
    }

    /// Exact percentile (nearest-rank); `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the recorder is empty or `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!(!self.micros.is_empty(), "no latencies recorded");
        assert!((0.0..=1.0).contains(&q), "percentile {q} out of [0, 1]");
        if !self.sorted {
            self.micros.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.micros.len() as f64).ceil() as usize).clamp(1, self.micros.len());
        self.micros[rank - 1] as f64
    }

    /// Freezes into a serialisable summary.
    ///
    /// # Panics
    ///
    /// Panics if the recorder is empty.
    pub fn summary(&mut self) -> LatencySummary {
        let mean = self.stats.mean();
        LatencySummary {
            count: self.stats.count(),
            mean_us: mean,
            stddev_us: self.stats.stddev(),
            min_us: self.stats.min(),
            p50_us: self.percentile(0.50),
            p90_us: self.percentile(0.90),
            p99_us: self.percentile(0.99),
            max_us: self.stats.max(),
            qps: if mean > 0.0 { 1e6 / mean } else { f64::INFINITY },
        }
    }

    /// Times `f` and records the elapsed latency, returning `f`'s output.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.record(t0.elapsed());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with(values_us: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &us in values_us {
            r.record(Duration::from_micros(us));
        }
        r
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = recorder_with(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.percentile(0.50), 50.0);
        assert_eq!(r.percentile(0.90), 90.0);
        assert_eq!(r.percentile(0.99), 100.0);
        assert_eq!(r.percentile(0.0), 10.0);
        assert_eq!(r.percentile(1.0), 100.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let mut r = recorder_with(&[100, 200, 300, 400]);
        let s = r.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean_us, 250.0);
        assert_eq!(s.min_us, 100.0);
        assert_eq!(s.max_us, 400.0);
        assert_eq!(s.p50_us, 200.0);
        assert!((s.qps - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn single_observation() {
        let mut r = recorder_with(&[42]);
        let s = r.summary();
        assert_eq!(s.p50_us, 42.0);
        assert_eq!(s.p99_us, 42.0);
        assert_eq!(s.stddev_us, 0.0);
    }

    #[test]
    #[should_panic(expected = "no latencies")]
    fn empty_percentile_panics() {
        LatencyRecorder::new().percentile(0.5);
    }

    #[test]
    fn time_records_and_returns() {
        let mut r = LatencyRecorder::with_capacity(4);
        let out = r.time(|| 7 * 6);
        assert_eq!(out, 42);
        assert_eq!(r.count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn interleaved_record_and_percentile() {
        // Percentile sorts lazily; recording afterwards must re-sort.
        let mut r = recorder_with(&[30, 10]);
        assert_eq!(r.percentile(1.0), 30.0);
        r.record(Duration::from_micros(5));
        assert_eq!(r.percentile(0.0), 5.0);
    }
}
