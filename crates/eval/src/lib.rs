//! Experiment harness for the MBI paper's evaluation (§5).
//!
//! The evaluation protocol, shared by every figure:
//!
//! 1. generate a dataset and hold out query vectors (§5.1.2);
//! 2. build the indexes (MBI, BSBF, SF) with the Table 3 parameters;
//! 3. draw query windows covering a target fraction of the data;
//! 4. sweep the search-range parameter `ε` from 1.0 to 1.4 in steps of 0.02
//!    and report points on the recall/QPS Pareto frontier (§5.1.3), or pick
//!    the fastest configuration whose recall@k clears 0.995 (Figures 5, 9);
//! 5. measure queries per second.
//!
//! * [`TknnMethod`] — object-safe facade over [`mbi_core::MbiIndex`],
//!   [`mbi_baselines::BsbfIndex`] and [`mbi_baselines::SfIndex`] so the
//!   harness treats all three identically.
//! * [`sweep`] — ε sweeps, Pareto frontiers, recall-targeted operating
//!   points.
//! * [`params`] — scaled Table 3 parameter sets per dataset preset.
//! * [`report`] — text tables and JSON result files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod latency;
pub mod method;
pub mod params;
pub mod report;
pub mod sweep;

pub use ingest::IngestSummary;
pub use latency::{LatencyRecorder, LatencySummary};
pub use method::{MethodKind, TknnMethod};
pub use params::ExperimentParams;
pub use report::{print_table, write_json};
pub use sweep::{
    epsilon_grid, pareto_frontier, qps_at_recall, sweep_epsilon, OperatingPoint, SweepPoint,
};
