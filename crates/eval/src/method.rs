//! A uniform facade over the three TkNN methods under evaluation.

use mbi_ann::{SearchParams, SearchStats};
use mbi_baselines::{BsbfIndex, SfIndex};
use mbi_core::{MbiIndex, TimeWindow};

/// Which method a [`TknnMethod`] handle wraps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodKind {
    /// Multi-level Block Indexing (the paper's contribution).
    Mbi,
    /// Binary Search and Brute-Force (exact baseline).
    Bsbf,
    /// Search and Filtering (graph baseline).
    Sf,
}

impl MethodKind {
    /// Display name used in figures ("MBI" / "BSBF" / "SF").
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Mbi => "MBI",
            MethodKind::Bsbf => "BSBF",
            MethodKind::Sf => "SF",
        }
    }
}

/// Object-safe TkNN query interface implemented by all three methods.
pub trait TknnMethod: Sync {
    /// Which method this is.
    fn kind(&self) -> MethodKind;

    /// Answer a TkNN query; returns result row ids (ascending distance) and
    /// work counters. `search` carries `M_C`/`ε`; BSBF is exact and ignores
    /// it.
    fn tknn(
        &self,
        query: &[f32],
        k: usize,
        window: TimeWindow,
        search: &SearchParams,
    ) -> (Vec<u32>, SearchStats);

    /// Whether `ε` affects this method (false for the exact BSBF — its
    /// recall is 1.0 at every ε, so sweeps measure it once).
    fn tunable(&self) -> bool {
        true
    }

    /// Bytes of auxiliary index structure (Table 4).
    fn index_memory_bytes(&self) -> usize;
}

impl TknnMethod for MbiIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::Mbi
    }

    fn tknn(
        &self,
        query: &[f32],
        k: usize,
        window: TimeWindow,
        search: &SearchParams,
    ) -> (Vec<u32>, SearchStats) {
        let out = self.query_with_params(query, k, window, search);
        (out.results.into_iter().map(|r| r.id).collect(), out.stats)
    }

    fn index_memory_bytes(&self) -> usize {
        MbiIndex::index_memory_bytes(self)
    }
}

impl TknnMethod for BsbfIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::Bsbf
    }

    fn tknn(
        &self,
        query: &[f32],
        k: usize,
        window: TimeWindow,
        _search: &SearchParams,
    ) -> (Vec<u32>, SearchStats) {
        let (res, stats) = self.query_with_stats(query, k, window);
        (res.into_iter().map(|r| r.id).collect(), stats)
    }

    fn tunable(&self) -> bool {
        false
    }

    fn index_memory_bytes(&self) -> usize {
        BsbfIndex::index_memory_bytes(self)
    }
}

impl TknnMethod for SfIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::Sf
    }

    fn tknn(
        &self,
        query: &[f32],
        k: usize,
        window: TimeWindow,
        search: &SearchParams,
    ) -> (Vec<u32>, SearchStats) {
        let (res, stats) = self.query_with_params(query, k, window, search);
        (res.into_iter().map(|r| r.id).collect(), stats)
    }

    fn index_memory_bytes(&self) -> usize {
        SfIndex::index_memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbi_baselines::SfConfig;
    use mbi_core::MbiConfig;
    use mbi_math::Metric;

    fn line_data(n: usize) -> Vec<(Vec<f32>, i64)> {
        (0..n).map(|i| (vec![i as f32, 0.0], i as i64)).collect()
    }

    #[test]
    fn all_three_methods_agree_on_easy_data() {
        let data = line_data(200);

        let mut mbi = MbiIndex::new(MbiConfig::new(2, Metric::Euclidean).with_leaf_size(32));
        let mut bsbf = BsbfIndex::new(2, Metric::Euclidean);
        let mut sf_cfg = SfConfig::new(2, Metric::Euclidean);
        sf_cfg.graph = mbi_ann::NnDescentParams { degree: 8, ..Default::default() };
        let mut sf = SfIndex::new(sf_cfg);
        for (v, t) in &data {
            mbi.insert(v, *t).unwrap();
            bsbf.insert(v, *t).unwrap();
            sf.insert(v, *t).unwrap();
        }
        sf.rebuild();

        let methods: [&dyn TknnMethod; 3] = [&mbi, &bsbf, &sf];
        let search = SearchParams::new(64, 1.2);
        let w = TimeWindow::new(20, 180);
        for m in methods {
            let (ids, stats) = m.tknn(&[100.0, 0.0], 5, w, &search);
            assert_eq!(ids, vec![100, 99, 101, 98, 102], "{}", m.kind().label());
            assert!(stats.dist_evals > 0 || stats.scanned > 0);
            assert!(m.index_memory_bytes() > 0);
        }
        assert!(mbi.tunable() && sf.tunable() && !bsbf.tunable());
        assert_eq!(MethodKind::Mbi.label(), "MBI");
        assert_eq!(MethodKind::Bsbf.label(), "BSBF");
        assert_eq!(MethodKind::Sf.label(), "SF");
    }
}
