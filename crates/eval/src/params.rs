//! Per-dataset experiment parameters — Table 3, scaled.
//!
//! Table 3 fixes, per dataset: the graph degree ("# neighbors"), the search
//! candidate cap `M_C`, the ε range (shared), `k ∈ {10, 50, 100}`, the `τ`
//! candidates, and the leaf size `S_L`. Those values assume the paper's full
//! cardinalities; when the synthetic stand-in is generated at `scale < 1`,
//! degree and `S_L` shrink accordingly (graph quality needed for a given
//! recall falls with `n`, and `S_L` is "set according to the scale of each
//! dataset" §5.1.3).

use mbi_ann::NnDescentParams;
use serde::{Deserialize, Serialize};

/// The Table 3 row for one dataset, plus the paper's `S_L`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Graph degree (# neighbors) at full scale.
    pub neighbors: usize,
    /// `M_C` at full scale.
    pub max_candidates: usize,
    /// τ values the paper reports as best for this dataset.
    pub taus: [f64; 2],
    /// `S_L` at full scale.
    pub leaf_size: usize,
}

/// Table 3 as printed in the paper.
pub const TABLE3: [Table3Row; 6] = [
    Table3Row {
        dataset: "movielens",
        neighbors: 96,
        max_candidates: 192,
        taus: [0.5, 0.5],
        leaf_size: 3550,
    },
    Table3Row {
        dataset: "coms",
        neighbors: 256,
        max_candidates: 256,
        taus: [0.2, 0.4],
        leaf_size: 1000,
    },
    Table3Row {
        dataset: "glove-100",
        neighbors: 256,
        max_candidates: 256,
        taus: [0.2, 0.7],
        leaf_size: 36000,
    },
    Table3Row {
        dataset: "sift1m",
        neighbors: 128,
        max_candidates: 128,
        taus: [0.3, 0.5],
        leaf_size: 15625,
    },
    Table3Row {
        dataset: "gist1m",
        neighbors: 512,
        max_candidates: 512,
        taus: [0.3, 0.5],
        leaf_size: 15625,
    },
    Table3Row {
        dataset: "deep1b",
        neighbors: 64,
        max_candidates: 64,
        taus: [0.2, 0.5],
        leaf_size: 78000,
    },
];

/// Concrete parameters for one experiment run at a given scale.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Graph degree for NNDescent blocks (and the SF whole-database graph).
    pub neighbors: usize,
    /// Candidate cap `M_C`.
    pub max_candidates: usize,
    /// Leaf size `S_L`.
    pub leaf_size: usize,
    /// Default `τ` (the better of the paper's two reported values).
    pub tau: f64,
    /// Number of nearest neighbours `k` (default 10 per §5.1.3).
    pub k: usize,
    /// Target recall@k for operating points (0.995 per §5.2).
    pub target_recall: f64,
}

impl ExperimentParams {
    /// Looks up the Table 3 row for `dataset` and scales it for a synthetic
    /// stand-in of `n_train` vectors.
    ///
    /// Scaling rules (documented in DESIGN.md):
    /// * `S_L` shrinks with the data so the tree keeps a comparable number of
    ///   levels: `S_L' = clamp(S_L · n/n_paper, 200, S_L)`.
    /// * degree and `M_C` shrink with `√(n/n_paper)` but never below 16 —
    ///   graph quality requirements fall slowly with `n`.
    pub fn for_dataset(dataset: &str, n_train: usize, n_paper: usize) -> Option<Self> {
        let row = TABLE3.iter().find(|r| r.dataset.eq_ignore_ascii_case(dataset))?;
        let ratio = (n_train as f64 / n_paper as f64).min(1.0);
        let soft = ratio.sqrt();
        let neighbors = ((row.neighbors as f64 * soft) as usize).clamp(16, row.neighbors);
        let max_candidates = ((row.max_candidates as f64 * soft) as usize)
            .clamp(neighbors.max(32), row.max_candidates);
        let leaf_size = ((row.leaf_size as f64 * ratio) as usize).clamp(200, row.leaf_size);
        Some(ExperimentParams {
            neighbors,
            max_candidates,
            leaf_size,
            tau: row.taus[0],
            k: 10,
            target_recall: 0.995,
        })
    }

    /// NNDescent parameters matching this experiment's degree.
    pub fn nndescent(&self, seed: u64) -> NnDescentParams {
        NnDescentParams { degree: self.neighbors, seed, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_match_paper() {
        assert_eq!(TABLE3.len(), 6);
        let coms = &TABLE3[1];
        assert_eq!(coms.neighbors, 256);
        assert_eq!(coms.leaf_size, 1000);
        assert_eq!(TABLE3[5].leaf_size, 78000);
        assert_eq!(TABLE3[0].taus, [0.5, 0.5]);
    }

    #[test]
    fn full_scale_matches_table() {
        let p = ExperimentParams::for_dataset("sift1m", 1_000_000, 1_000_000).unwrap();
        assert_eq!(p.neighbors, 128);
        assert_eq!(p.max_candidates, 128);
        assert_eq!(p.leaf_size, 15625);
        assert_eq!(p.tau, 0.3);
        assert_eq!(p.k, 10);
        assert_eq!(p.target_recall, 0.995);
    }

    #[test]
    fn small_scale_shrinks_with_floors() {
        let p = ExperimentParams::for_dataset("sift1m", 40_000, 1_000_000).unwrap();
        assert!(p.neighbors >= 16 && p.neighbors < 128);
        assert!(p.leaf_size >= 200 && p.leaf_size < 15625);
        assert!(p.max_candidates >= p.neighbors);
        // And the tree still has multiple levels.
        assert!(40_000 / p.leaf_size >= 4, "leaf {} too big", p.leaf_size);
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(ExperimentParams::for_dataset("unknown", 1000, 1000).is_none());
    }

    #[test]
    fn nndescent_params_take_degree() {
        let p = ExperimentParams::for_dataset("coms", 291_180, 291_180).unwrap();
        let nd = p.nndescent(42);
        assert_eq!(nd.degree, 256);
        assert_eq!(nd.seed, 42);
    }
}
