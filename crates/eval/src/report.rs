//! Result output: aligned text tables to stdout, JSON files to `results/`.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Prints an aligned text table: a header row then data rows. Column widths
/// fit the widest cell. Used by every `figN`/`tableN` binary so reproduction
/// output looks like the paper's tables.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line_len: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "\n## {title}");
    let _ = writeln!(out, "{}", "-".repeat(line_len.max(title.len() + 3)));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells, &widths));
    let _ = writeln!(out, "{}", "-".repeat(line_len.max(title.len() + 3)));
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
}

/// Serialises `value` as pretty JSON into `dir/name.json`, creating the
/// directory if needed. Returns the path written.
pub fn write_json<T: Serialize>(
    dir: impl AsRef<Path>,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Formats a float with 3 significant-ish decimals for table cells.
pub fn fmt3(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a byte count as MB with 2 decimals.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_roundtrip() {
        #[derive(Serialize)]
        struct R {
            a: u32,
            b: Vec<f64>,
        }
        let dir = std::env::temp_dir().join("mbi_report_test");
        let path = write_json(&dir, "sample", &R { a: 1, b: vec![0.5, 0.25] }).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"a\": 1"));
        assert!(text.contains("0.25"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt3(0.0), "0");
        assert_eq!(fmt3(1234.5), "1234");
        assert_eq!(fmt3(12.345), "12.35");
        assert_eq!(fmt3(0.12345), "0.1235");
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
        assert_eq!(fmt_mb(3 * 1024 * 1024 / 2), "1.50");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "sample",
            &["col_a", "b"],
            &[vec!["1".into(), "long value".into()], vec!["2222".into(), "x".into()]],
        );
        print_table("empty", &[], &[]);
    }
}
