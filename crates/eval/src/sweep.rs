//! ε sweeps, Pareto frontiers and recall-targeted operating points.
//!
//! §5.1.3: *"We vary the value of ε in increments of 0.02, ranging from 1 to
//! 1.4, and present the optimal based on the Pareto frontier."* Figures 5
//! and 9 fix the operating point instead: the fastest configuration whose
//! recall@k is at least 0.995.

use crate::method::TknnMethod;
use mbi_ann::SearchParams;
use mbi_core::TimeWindow;
use mbi_data::recall_at_k;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One measured `(ε, recall, QPS)` point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The ε this point was measured at.
    pub epsilon: f32,
    /// Mean recall@k over the workload.
    pub recall: f64,
    /// Queries per second.
    pub qps: f64,
    /// Mean distance evaluations per query.
    pub dist_evals: f64,
}

/// The chosen operating point of a method for one workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// ε in use (1.0 for exact methods).
    pub epsilon: f32,
    /// Achieved recall@k.
    pub recall: f64,
    /// Queries per second at that ε.
    pub qps: f64,
}

/// The paper's ε grid: 1.0 to 1.4 in steps of 0.02 (21 points).
pub fn epsilon_grid() -> Vec<f32> {
    (0..=20).map(|i| 1.0 + i as f32 * 0.02).collect()
}

/// Runs the full workload at one ε; returns recall and timing.
fn run_once(
    method: &dyn TknnMethod,
    workload: &[(Vec<f32>, TimeWindow)],
    truth: &[Vec<u32>],
    k: usize,
    search: SearchParams,
) -> SweepPoint {
    let start = Instant::now();
    let mut dist_evals = 0u64;
    let mut recall_sum = 0.0;
    for ((q, w), exact) in workload.iter().zip(truth) {
        let (ids, stats) = method.tknn(q, k, *w, &search);
        dist_evals += stats.dist_evals;
        recall_sum += recall_at_k(&ids, exact, k);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let n = workload.len().max(1) as f64;
    SweepPoint {
        epsilon: search.epsilon,
        recall: recall_sum / n,
        qps: n / elapsed.max(1e-12),
        dist_evals: dist_evals as f64 / n,
    }
}

/// Sweeps the ε grid over a workload. Exact methods (`tunable() == false`)
/// are measured once at ε = 1.0.
pub fn sweep_epsilon(
    method: &dyn TknnMethod,
    workload: &[(Vec<f32>, TimeWindow)],
    truth: &[Vec<u32>],
    k: usize,
    max_candidates: usize,
    grid: &[f32],
) -> Vec<SweepPoint> {
    assert_eq!(workload.len(), truth.len(), "workload and truth must pair up");
    let grid: Vec<f32> = if method.tunable() { grid.to_vec() } else { vec![1.0] };
    grid.into_iter()
        .map(|eps| run_once(method, workload, truth, k, SearchParams::new(max_candidates, eps)))
        .collect()
}

/// Keeps the points not dominated by any other (higher recall *and* higher
/// QPS), sorted by ascending recall — the curve plotted in Figure 6.
pub fn pareto_frontier(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let mut sorted: Vec<SweepPoint> = points.to_vec();
    // Descending by recall; then a point survives iff its QPS beats every
    // higher-recall point's QPS.
    sorted.sort_by(|a, b| b.recall.total_cmp(&a.recall).then(b.qps.total_cmp(&a.qps)));
    let mut frontier: Vec<SweepPoint> = Vec::new();
    let mut best_qps = f64::NEG_INFINITY;
    for p in sorted {
        if p.qps > best_qps {
            best_qps = p.qps;
            frontier.push(p);
        }
    }
    frontier.reverse();
    frontier
}

/// The Figure 5 / Figure 9 operating point: the fastest ε whose recall@k
/// clears `target_recall`; falls back to the highest-recall point when no ε
/// reaches the target (reported recall makes the shortfall visible).
pub fn qps_at_recall(
    method: &dyn TknnMethod,
    workload: &[(Vec<f32>, TimeWindow)],
    truth: &[Vec<u32>],
    k: usize,
    max_candidates: usize,
    target_recall: f64,
    grid: &[f32],
) -> OperatingPoint {
    let points = sweep_epsilon(method, workload, truth, k, max_candidates, grid);
    let qualifying =
        points.iter().filter(|p| p.recall >= target_recall).max_by(|a, b| a.qps.total_cmp(&b.qps));
    let chosen = qualifying.unwrap_or_else(|| {
        points
            .iter()
            .max_by(|a, b| a.recall.total_cmp(&b.recall).then(a.qps.total_cmp(&b.qps)))
            .expect("grid is non-empty")
    });
    OperatingPoint { epsilon: chosen.epsilon, recall: chosen.recall, qps: chosen.qps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbi_baselines::BsbfIndex;
    use mbi_core::{MbiConfig, MbiIndex};
    use mbi_data::ground_truth;
    use mbi_math::Metric;

    #[allow(clippy::type_complexity)]
    fn setup() -> (MbiIndex, BsbfIndex, Vec<(Vec<f32>, TimeWindow)>, Vec<Vec<u32>>) {
        let mut mbi = MbiIndex::new(MbiConfig::new(2, Metric::Euclidean).with_leaf_size(64));
        let mut bsbf = BsbfIndex::new(2, Metric::Euclidean);
        for i in 0..400i64 {
            let v = [(i as f32 * 0.13).sin() * 10.0, (i as f32 * 0.29).cos() * 10.0];
            mbi.insert(&v, i).unwrap();
            bsbf.insert(&v, i).unwrap();
        }
        let workload: Vec<(Vec<f32>, TimeWindow)> = (0..10)
            .map(|i| {
                (
                    vec![(i as f32).sin() * 10.0, (i as f32).cos() * 10.0],
                    TimeWindow::new(i * 10, i * 10 + 300),
                )
            })
            .collect();
        let truth = ground_truth(mbi.store(), mbi.timestamps(), &workload, 5, Metric::Euclidean, 2);
        (mbi, bsbf, workload, truth)
    }

    #[test]
    fn grid_matches_paper() {
        let g = epsilon_grid();
        assert_eq!(g.len(), 21);
        assert_eq!(g[0], 1.0);
        assert!((g[20] - 1.4).abs() < 1e-6);
        assert!((g[1] - 1.02).abs() < 1e-6);
    }

    #[test]
    fn exact_method_swept_once_with_perfect_recall() {
        let (_, bsbf, workload, truth) = setup();
        let pts = sweep_epsilon(&bsbf, &workload, &truth, 5, 64, &epsilon_grid());
        assert_eq!(pts.len(), 1, "BSBF is exact; one measurement suffices");
        assert_eq!(pts[0].recall, 1.0);
        assert!(pts[0].qps > 0.0);
    }

    #[test]
    fn mbi_sweep_has_grid_points_and_good_recall() {
        let (mbi, _, workload, truth) = setup();
        let pts = sweep_epsilon(&mbi, &workload, &truth, 5, 64, &epsilon_grid());
        assert_eq!(pts.len(), 21);
        let best = pts.iter().map(|p| p.recall).fold(0.0, f64::max);
        assert!(best > 0.9, "best recall {best}");
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let pts = vec![
            SweepPoint { epsilon: 1.0, recall: 0.5, qps: 100.0, dist_evals: 1.0 },
            SweepPoint { epsilon: 1.1, recall: 0.7, qps: 120.0, dist_evals: 1.0 }, // dominates the first
            SweepPoint { epsilon: 1.2, recall: 0.9, qps: 50.0, dist_evals: 1.0 },
            SweepPoint { epsilon: 1.3, recall: 0.95, qps: 40.0, dist_evals: 1.0 },
            SweepPoint { epsilon: 1.4, recall: 0.93, qps: 30.0, dist_evals: 1.0 }, // dominated
        ];
        let f = pareto_frontier(&pts);
        let recalls: Vec<f64> = f.iter().map(|p| p.recall).collect();
        assert_eq!(recalls, vec![0.7, 0.9, 0.95]);
        // QPS decreases as recall increases along a frontier.
        for w in f.windows(2) {
            assert!(w[0].qps >= w[1].qps);
        }
    }

    #[test]
    fn qps_at_recall_picks_qualifying_point() {
        let (mbi, _, workload, truth) = setup();
        let op = qps_at_recall(&mbi, &workload, &truth, 5, 64, 0.9, &epsilon_grid());
        assert!(op.recall >= 0.9, "recall {}", op.recall);
        assert!(op.qps > 0.0);
    }

    #[test]
    fn qps_at_recall_falls_back_when_unreachable() {
        let (mbi, _, workload, truth) = setup();
        // recall 1.01 is impossible; fallback returns the best-recall point.
        let op = qps_at_recall(&mbi, &workload, &truth, 5, 64, 1.01, &epsilon_grid());
        assert!(op.recall <= 1.0);
        assert!(op.qps > 0.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_truth_rejected() {
        let (mbi, _, workload, _) = setup();
        sweep_epsilon(&mbi, &workload, &[], 5, 64, &epsilon_grid());
    }
}
