//! Integration tests for the experiment harness: the full
//! sweep → frontier → operating-point pipeline against real indexes.

use mbi_ann::NnDescentParams;
use mbi_baselines::BsbfIndex;
use mbi_core::{GraphBackend, MbiConfig, MbiIndex, TimeWindow};
use mbi_data::{ground_truth, windows_for_fraction, DriftingMixture};
use mbi_eval::{
    epsilon_grid, pareto_frontier, qps_at_recall, sweep_epsilon, ExperimentParams, TknnMethod,
};
use mbi_math::Metric;

fn setup(n: usize) -> (MbiIndex, BsbfIndex, mbi_data::Dataset) {
    let dataset = DriftingMixture::new(12, 4242).generate("h", Metric::Euclidean, n, 10);
    let mut mbi =
        MbiIndex::new(MbiConfig::new(12, Metric::Euclidean).with_leaf_size(256).with_backend(
            GraphBackend::NnDescent(NnDescentParams { degree: 10, ..Default::default() }),
        ));
    let mut bsbf = BsbfIndex::new(12, Metric::Euclidean);
    for (v, t) in dataset.iter() {
        mbi.insert(v, t).unwrap();
        bsbf.insert(v, t).unwrap();
    }
    (mbi, bsbf, dataset)
}

#[allow(clippy::type_complexity)]
fn workload(
    dataset: &mbi_data::Dataset,
    fraction: f64,
    k: usize,
) -> (Vec<(Vec<f32>, TimeWindow)>, Vec<Vec<u32>>) {
    let windows = windows_for_fraction(&dataset.timestamps, fraction, 10, 5);
    let workload: Vec<(Vec<f32>, TimeWindow)> = windows
        .into_iter()
        .enumerate()
        .map(|(i, w)| (dataset.test.get(i % dataset.test.len()).to_vec(), w))
        .collect();
    let truth = ground_truth(&dataset.train, &dataset.timestamps, &workload, k, dataset.metric, 1);
    (workload, truth)
}

#[test]
fn sweep_recall_is_monotonic_enough_in_epsilon() {
    let (mbi, _, dataset) = setup(3_000);
    let (wl, truth) = workload(&dataset, 0.4, 10);
    let pts = sweep_epsilon(&mbi, &wl, &truth, 10, 64, &epsilon_grid());
    assert_eq!(pts.len(), 21);
    // Recall at the top of the grid must beat recall at the bottom (the ε
    // knob works) and distance work must grow with ε.
    assert!(pts.last().unwrap().recall >= pts.first().unwrap().recall);
    assert!(pts.last().unwrap().dist_evals >= pts.first().unwrap().dist_evals);
}

#[test]
fn pareto_frontier_of_real_sweep_is_valid() {
    let (mbi, _, dataset) = setup(3_000);
    let (wl, truth) = workload(&dataset, 0.3, 10);
    let pts = sweep_epsilon(&mbi, &wl, &truth, 10, 64, &epsilon_grid());
    let frontier = pareto_frontier(&pts);
    assert!(!frontier.is_empty());
    assert!(frontier.len() <= pts.len());
    for w in frontier.windows(2) {
        assert!(w[0].recall <= w[1].recall);
        assert!(w[0].qps >= w[1].qps, "frontier must trade qps for recall");
    }
    // No frontier point is dominated by any sweep point.
    for f in &frontier {
        for p in &pts {
            assert!(!(p.recall > f.recall && p.qps > f.qps), "frontier point dominated");
        }
    }
}

#[test]
fn operating_point_meets_target_for_exact_method() {
    let (_, bsbf, dataset) = setup(2_000);
    let (wl, truth) = workload(&dataset, 0.5, 10);
    let op = qps_at_recall(&bsbf, &wl, &truth, 10, 64, 0.995, &epsilon_grid());
    assert_eq!(op.recall, 1.0);
    assert_eq!(op.epsilon, 1.0);
    assert!(op.qps > 0.0);
}

#[test]
fn experiment_params_cover_every_preset() {
    for preset in mbi_data::all_presets() {
        let p = ExperimentParams::for_dataset(preset.name, 20_000, preset.paper_train)
            .unwrap_or_else(|| panic!("no Table 3 row for {}", preset.name));
        assert!(p.neighbors >= 16);
        assert!(p.leaf_size >= 200);
        assert!(p.max_candidates >= p.neighbors.min(32));
        assert_eq!(p.target_recall, 0.995);
    }
}

#[test]
fn method_kinds_and_memory() {
    let (mbi, bsbf, _) = setup(1_000);
    assert_eq!(mbi.kind().label(), "MBI");
    assert_eq!(bsbf.kind().label(), "BSBF");
    assert!(TknnMethod::index_memory_bytes(&mbi) > TknnMethod::index_memory_bytes(&bsbf));
}
