//! A totally ordered `f32` wrapper.

use std::cmp::Ordering;
use std::fmt;

/// An `f32` with a total order, suitable for use as a key in heaps, sorted
/// vectors and `BTreeMap`s.
///
/// Distances produced by the kernels in this crate are always finite and
/// non-negative, so the subtleties of IEEE total ordering rarely matter in
/// practice; nevertheless `OrderedF32` uses [`f32::total_cmp`], which orders
/// `-NaN < -inf < … < +inf < NaN`, so that *no* input can panic or produce an
/// inconsistent order. An inconsistent `Ord` inside a `BinaryHeap` would make
/// search results silently nondeterministic, which is the worst possible
/// failure mode for a recall-measured system.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct OrderedF32(pub f32);

impl OrderedF32 {
    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f32 {
        self.0
    }
}

impl Eq for OrderedF32 {}

impl PartialOrd for OrderedF32 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF32 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f32> for OrderedF32 {
    #[inline]
    fn from(v: f32) -> Self {
        OrderedF32(v)
    }
}

impl From<OrderedF32> for f32 {
    #[inline]
    fn from(v: OrderedF32) -> Self {
        v.0
    }
}

impl fmt::Debug for OrderedF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Display for OrderedF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::hash::Hash for OrderedF32 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_plain_values() {
        let mut v = vec![OrderedF32(3.0), OrderedF32(-1.0), OrderedF32(0.0), OrderedF32(2.5)];
        v.sort();
        let raw: Vec<f32> = v.into_iter().map(f32::from).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 2.5, 3.0]);
    }

    #[test]
    fn nan_sorts_last() {
        let mut v = [OrderedF32(f32::NAN), OrderedF32(1.0), OrderedF32(2.0)];
        v.sort();
        assert_eq!(v[0].get(), 1.0);
        assert_eq!(v[1].get(), 2.0);
        assert!(v[2].get().is_nan());
    }

    #[test]
    fn zero_signs_are_distinguished_consistently() {
        // total_cmp orders -0.0 < +0.0; we only need consistency, not equality.
        assert_eq!(OrderedF32(-0.0).cmp(&OrderedF32(0.0)), Ordering::Less);
        assert_eq!(OrderedF32(0.0).cmp(&OrderedF32(-0.0)), Ordering::Greater);
    }

    #[test]
    fn roundtrip_conversions() {
        let x: OrderedF32 = 1.5f32.into();
        let y: f32 = x.into();
        assert_eq!(y, 1.5);
        assert_eq!(x.get(), 1.5);
    }

    #[test]
    fn hash_matches_bits() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(OrderedF32(1.0));
        assert!(s.contains(&OrderedF32(1.0)));
        assert!(!s.contains(&OrderedF32(2.0)));
    }

    #[test]
    fn infinities_order() {
        assert!(OrderedF32(f32::NEG_INFINITY) < OrderedF32(-1.0e30));
        assert!(OrderedF32(f32::INFINITY) > OrderedF32(1.0e30));
    }
}
