//! Prepared-query and 1-to-many batched distance kernels.
//!
//! Three per-comparison overheads dominate once the index structure is cheap
//! (see DESIGN.md "Distance-kernel architecture"):
//!
//! 1. the *query's* norm being recomputed once per candidate on the angular
//!    metric — [`PreparedQuery`] computes it exactly once per query;
//! 2. the *candidate's* norm being recomputed on every comparison — stores
//!    can cache a per-vector **inverse norm** at insert time (`0.0` is the
//!    sentinel for zero vectors) and feed it back via the `*_cached` paths,
//!    collapsing angular distance to a single fused dot pass;
//! 3. per-call dispatch overhead when scanning contiguous rows — the
//!    `*_batch` kernels hold the query hot while streaming `N` candidates.
//!
//! Contract with the scalar kernels in [`crate::metric`]: the batched
//! Euclidean and inner-product paths are **bit-identical** (every backend in
//! [`crate::simd`] implements the same canonical accumulation shape, and the
//! per-call kernels dispatch to the same single-row primitives), and every
//! angular path agrees with [`angular_distance`](crate::angular_distance) to
//! within `1e-5`, including the zero-vector → `1.0` convention.

use crate::metric::{dot_norm2, Metric};
use crate::simd;
use crate::{dot, norm, squared_euclidean};

/// Reciprocal Euclidean norm of `v`, with `0.0` as the zero-vector sentinel.
///
/// This is the value stored in a `VectorStore` norm column. Encoding "no
/// norm" as `0.0` (rather than `NaN` or an `Option`) keeps the column a plain
/// `f32` array and makes the sentinel test a single comparison in the kernel.
#[inline]
pub fn inv_norm_of(v: &[f32]) -> f32 {
    let n = norm(v);
    if n == 0.0 {
        0.0
    } else {
        1.0 / n
    }
}

/// Angular distance from precomputed parts: the dot product and the two
/// inverse norms. Either inverse norm being the `0.0` sentinel (a zero
/// vector) yields `1.0`, exactly like the scalar
/// [`angular_distance`](crate::angular_distance).
#[inline]
pub fn angular_from_parts(dp: f32, inv_a: f32, inv_b: f32) -> f32 {
    if inv_a == 0.0 || inv_b == 0.0 {
        return 1.0;
    }
    // Clamp for numerical safety: floating error can push |cos| past 1.
    1.0 - (dp * inv_a * inv_b).clamp(-1.0, 1.0)
}

#[inline]
fn inv_from_norm2(n2: f32) -> f32 {
    if n2 == 0.0 {
        0.0
    } else {
        1.0 / n2.sqrt()
    }
}

/// Checks that `rows` is a flat `[n × dim]` buffer and returns `n`.
#[inline]
fn row_count(dim: usize, rows: &[f32]) -> usize {
    assert!(dim > 0, "query must have at least one dimension");
    assert_eq!(rows.len() % dim, 0, "rows length {} is not a multiple of dim {}", rows.len(), dim);
    rows.len() / dim
}

/// Appends `‖query − rowᵢ‖²` for each contiguous `dim`-sized row of `rows`
/// onto `out`. Bit-identical to calling
/// [`squared_euclidean`](crate::squared_euclidean) per row.
pub fn squared_euclidean_batch(query: &[f32], rows: &[f32], out: &mut Vec<f32>) {
    let n = row_count(query.len(), rows);
    out.reserve(n);
    simd::euclidean_batch(query, rows, out);
}

/// Appends `⟨query, rowᵢ⟩` for each contiguous `dim`-sized row of `rows` onto
/// `out`. Bit-identical to calling [`dot`](crate::dot) per row.
pub fn dot_batch(query: &[f32], rows: &[f32], out: &mut Vec<f32>) {
    let n = row_count(query.len(), rows);
    out.reserve(n);
    simd::dot_batch(query, rows, false, out);
}

/// Appends `−⟨query, rowᵢ⟩` (the inner-product *distance*) for each
/// contiguous `dim`-sized row of `rows` onto `out`.
///
/// The sign flip is fused into the batched kernel — there is no second pass
/// over `out` — and each value is bit-identical to `-dot(query, row)`.
pub fn neg_dot_batch(query: &[f32], rows: &[f32], out: &mut Vec<f32>) {
    let n = row_count(query.len(), rows);
    out.reserve(n);
    simd::dot_batch(query, rows, true, out);
}

/// Appends the angular distance from `query` to each contiguous `dim`-sized
/// row of `rows` onto `out`.
///
/// `query_inv_norm` is the query's precomputed inverse norm (`0.0` sentinel
/// for a zero query). When `inv_norms` is `Some`, it must hold one cached
/// inverse norm per row and each comparison is a single fused dot pass;
/// otherwise the row norm is recovered in the same pass via
/// `dot_norm2`. Either way the result is within `1e-5` of the scalar
/// [`angular_distance`](crate::angular_distance), with zero vectors mapping
/// to exactly `1.0`.
pub fn angular_batch(
    query: &[f32],
    query_inv_norm: f32,
    rows: &[f32],
    inv_norms: Option<&[f32]>,
    out: &mut Vec<f32>,
) {
    let n = row_count(query.len(), rows);
    out.reserve(n);
    match inv_norms {
        Some(inv) => {
            assert_eq!(inv.len(), n, "inverse-norm column does not match row count");
            simd::angular_batch_cached(query, query_inv_norm, rows, inv, out);
        }
        None => {
            simd::angular_batch_uncached(query, query_inv_norm, rows, out);
        }
    }
}

/// A query with its metric-dependent preprocessing done exactly once.
///
/// For the angular metric this caches the query's inverse norm, so no kernel
/// ever recomputes it per candidate; for Euclidean and inner product the
/// struct is a zero-cost bundle of `(metric, query)` whose distances are
/// bit-identical to [`Metric::distance`].
///
/// ```
/// use mbi_math::{Metric, PreparedQuery};
///
/// let q = [3.0, 4.0];
/// let pq = PreparedQuery::new(Metric::Angular, &q);
/// assert!((pq.inv_norm() - 0.2).abs() < 1e-7);
/// let d = pq.distance_to(&[4.0, 3.0]);
/// assert!((d - Metric::Angular.distance(&q, &[4.0, 3.0])).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PreparedQuery<'q> {
    metric: Metric,
    query: &'q [f32],
    inv_norm: f32,
}

impl<'q> PreparedQuery<'q> {
    /// Prepares `query` for repeated distance evaluation under `metric`.
    ///
    /// The inverse norm is computed only for [`Metric::Angular`]; the other
    /// metrics never read it.
    pub fn new(metric: Metric, query: &'q [f32]) -> Self {
        let inv_norm = if metric == Metric::Angular { inv_norm_of(query) } else { 0.0 };
        PreparedQuery { metric, query, inv_norm }
    }

    /// The metric this query was prepared for.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The underlying query vector.
    #[inline]
    pub fn query(&self) -> &'q [f32] {
        self.query
    }

    /// The cached inverse norm (`0.0` for non-angular metrics and for zero
    /// queries).
    #[inline]
    pub fn inv_norm(&self) -> f32 {
        self.inv_norm
    }

    /// Distance to a candidate whose inverse norm is *not* cached.
    ///
    /// Euclidean and inner product are bit-identical to
    /// [`Metric::distance`]; angular fuses the dot and candidate-norm passes
    /// and reuses the prepared query norm (within `1e-5` of scalar).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch, like [`Metric::distance`].
    #[inline]
    pub fn distance_to(&self, b: &[f32]) -> f32 {
        assert_eq!(
            self.query.len(),
            b.len(),
            "dimension mismatch: {} vs {}",
            self.query.len(),
            b.len()
        );
        match self.metric {
            Metric::Euclidean => squared_euclidean(self.query, b),
            Metric::InnerProduct => -dot(self.query, b),
            Metric::Angular => {
                let (dp, nb2) = dot_norm2(self.query, b);
                angular_from_parts(dp, self.inv_norm, inv_from_norm2(nb2))
            }
        }
    }

    /// Distance to a candidate with a cached inverse norm: a single dot pass
    /// on the angular metric. Non-angular metrics ignore `b_inv_norm`.
    #[inline]
    pub fn distance_to_cached(&self, b: &[f32], b_inv_norm: f32) -> f32 {
        match self.metric {
            Metric::Angular => {
                assert_eq!(
                    self.query.len(),
                    b.len(),
                    "dimension mismatch: {} vs {}",
                    self.query.len(),
                    b.len()
                );
                if self.inv_norm == 0.0 || b_inv_norm == 0.0 {
                    return 1.0;
                }
                angular_from_parts(dot(self.query, b), self.inv_norm, b_inv_norm)
            }
            _ => self.distance_to(b),
        }
    }

    /// Distance to a row whose inverse norm may or may not be cached —
    /// the common shape at call sites holding an `Option<&[f32]>` column.
    #[inline]
    pub fn distance_to_row(&self, b: &[f32], inv_norm: Option<f32>) -> f32 {
        match inv_norm {
            Some(inv_b) if self.metric == Metric::Angular => self.distance_to_cached(b, inv_b),
            _ => self.distance_to(b),
        }
    }

    /// Appends the distance to every contiguous `dim`-sized row of `rows`
    /// onto `out`, dispatching to the metric's batched kernel. `inv_norms`
    /// is the cached inverse-norm column for exactly these rows, if any
    /// (only the angular metric reads it).
    pub fn distance_batch(&self, rows: &[f32], inv_norms: Option<&[f32]>, out: &mut Vec<f32>) {
        match self.metric {
            Metric::Euclidean => squared_euclidean_batch(self.query, rows, out),
            Metric::InnerProduct => neg_dot_batch(self.query, rows, out),
            Metric::Angular => angular_batch(self.query, self.inv_norm, rows, inv_norms, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angular_distance;

    fn rows_of(n: usize, dim: usize, seed: u32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n * dim)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn inv_norm_of_zero_vector_is_sentinel() {
        assert_eq!(inv_norm_of(&[0.0; 12]), 0.0);
        assert!((inv_norm_of(&[3.0, 4.0]) - 0.2).abs() < 1e-7);
    }

    #[test]
    fn batch_euclidean_and_dot_are_bit_identical_to_per_call() {
        for dim in [1usize, 3, 8, 9, 32, 33] {
            let q = rows_of(1, dim, 7);
            let rows = rows_of(5, dim, 99);
            let mut se = Vec::new();
            let mut dp = Vec::new();
            squared_euclidean_batch(&q, &rows, &mut se);
            dot_batch(&q, &rows, &mut dp);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                assert_eq!(se[i].to_bits(), squared_euclidean(&q, row).to_bits());
                assert_eq!(dp[i].to_bits(), dot(&q, row).to_bits());
            }
        }
    }

    #[test]
    fn batch_angular_matches_scalar_with_and_without_cache() {
        for dim in [1usize, 7, 8, 16, 33] {
            let q = rows_of(1, dim, 41);
            let rows = rows_of(6, dim, 43);
            let inv: Vec<f32> = rows.chunks_exact(dim).map(inv_norm_of).collect();
            let q_inv = inv_norm_of(&q);
            let mut cached = Vec::new();
            let mut uncached = Vec::new();
            angular_batch(&q, q_inv, &rows, Some(&inv), &mut cached);
            angular_batch(&q, q_inv, &rows, None, &mut uncached);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                let scalar = angular_distance(&q, row);
                assert!((cached[i] - scalar).abs() <= 1e-5, "cached dim={dim} i={i}");
                assert!((uncached[i] - scalar).abs() <= 1e-5, "uncached dim={dim} i={i}");
            }
        }
    }

    #[test]
    fn zero_vectors_hit_exactly_one_everywhere() {
        // Regression for the sentinel convention: every angular path must
        // return *exactly* 1.0 when either side is the zero vector, matching
        // the scalar kernel bit for bit.
        let dim = 5;
        let q = rows_of(1, dim, 3);
        let zero = vec![0.0f32; dim];

        assert_eq!(angular_from_parts(0.0, 0.0, 0.5), 1.0);
        assert_eq!(angular_from_parts(0.0, 0.5, 0.0), 1.0);

        // Zero candidate row, cached (sentinel 0.0) and uncached.
        let mut out = Vec::new();
        angular_batch(&q, inv_norm_of(&q), &zero, Some(&[0.0]), &mut out);
        assert_eq!(out, vec![1.0]);
        out.clear();
        angular_batch(&q, inv_norm_of(&q), &zero, None, &mut out);
        assert_eq!(out, vec![1.0]);

        // Zero query against a normal row.
        let pq = PreparedQuery::new(Metric::Angular, &zero);
        assert_eq!(pq.inv_norm(), 0.0);
        assert_eq!(pq.distance_to(&q), 1.0);
        assert_eq!(pq.distance_to_cached(&q, inv_norm_of(&q)), 1.0);
        assert_eq!(angular_distance(&zero, &q), 1.0);
    }

    #[test]
    fn prepared_query_matches_metric_distance() {
        for metric in [Metric::Euclidean, Metric::Angular, Metric::InnerProduct] {
            for dim in [1usize, 8, 11, 24] {
                let q = rows_of(1, dim, 17);
                let rows = rows_of(4, dim, 19);
                let inv: Vec<f32> = rows.chunks_exact(dim).map(inv_norm_of).collect();
                let pq = PreparedQuery::new(metric, &q);
                let mut batch = Vec::new();
                pq.distance_batch(&rows, Some(&inv), &mut batch);
                for (i, row) in rows.chunks_exact(dim).enumerate() {
                    let scalar = metric.distance(&q, row);
                    let tol = if metric == Metric::Angular { 1e-5 } else { 0.0 };
                    assert!((pq.distance_to(row) - scalar).abs() <= tol);
                    assert!((pq.distance_to_cached(row, inv[i]) - scalar).abs() <= tol);
                    assert!((pq.distance_to_row(row, Some(inv[i])) - scalar).abs() <= tol);
                    assert!((batch[i] - scalar).abs() <= tol);
                    if metric != Metric::Angular {
                        // Bit-identical on Euclidean / inner product.
                        assert_eq!(pq.distance_to(row).to_bits(), scalar.to_bits());
                        assert_eq!(batch[i].to_bits(), scalar.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn prepared_query_rejects_dim_mismatch() {
        PreparedQuery::new(Metric::Euclidean, &[1.0]).distance_to(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple of dim")]
    fn batch_rejects_ragged_rows() {
        let mut out = Vec::new();
        squared_euclidean_batch(&[1.0, 2.0], &[1.0, 2.0, 3.0], &mut out);
    }
}
