//! Numeric foundations for the MBI time-restricted kNN stack.
//!
//! This crate provides the small, hot pieces shared by every other crate in the
//! workspace:
//!
//! * [`Metric`] — the distance functions used by the paper's datasets
//!   (Euclidean for SIFT/GIST, angular a.k.a. cosine distance for
//!   MovieLens/COMS/GloVe/DEEP), written as chunked kernels the compiler can
//!   auto-vectorise.
//! * [`PreparedQuery`] and the `*_batch` kernels — the norm-cached,
//!   1-to-many fast paths used by every search loop (see DESIGN.md
//!   "Distance-kernel architecture").
//! * [`OrderedF32`] — a totally ordered `f32` wrapper so distances can live in
//!   heaps and sorted collections without `partial_cmp().unwrap()` noise.
//! * [`Neighbor`] and [`TopK`] — the `(id, distance)` pair and the bounded
//!   max-heap used to keep the `k` best candidates in `O(log k)` per insert,
//!   matching the complexity accounting in §3.2.1 of the paper.
//! * [`OnlineStats`] — Welford streaming statistics used by the experiment
//!   harness for timing summaries.
//!
//! Everything here is deliberately dependency-free (apart from `serde` for
//! result reporting) and heavily unit- and property-tested, because a subtle
//! ordering bug in a distance kernel silently corrupts every recall number in
//! the evaluation.
//!
//! `unsafe` is denied crate-wide with a single exception: the [`simd`] module
//! holds the explicit AVX2/NEON kernels behind runtime feature detection, and
//! is the only place intrinsics are allowed.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod float;
mod kernels;
mod metric;
pub mod simd;
mod stats;
mod topk;

pub use float::OrderedF32;
pub use kernels::{
    angular_batch, angular_from_parts, dot_batch, inv_norm_of, neg_dot_batch,
    squared_euclidean_batch, PreparedQuery,
};
pub use metric::{angular_distance, dot, norm, squared_euclidean, Metric};
pub use stats::OnlineStats;
pub use topk::{topk_by_sort, Neighbor, TopK};
