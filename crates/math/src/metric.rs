//! Distance kernels.
//!
//! The paper evaluates on Euclidean datasets (SIFT1M, GIST1M) and angular
//! datasets (MovieLens, COMS, GloVe-100, DEEP1B); see Table 2. Both metrics are
//! provided here, plus inner-product similarity as a convenience for
//! recommendation-style workloads.
//!
//! All kernels dispatch to the explicit-SIMD implementations in
//! [`crate::simd`]: AVX2+FMA on `x86_64`, NEON on `aarch64`, and a portable
//! scalar shape otherwise. Every backend implements the same canonical
//! accumulation shape, so the per-call kernels here, the batched kernels in
//! [`crate::kernels`], and the scalar fallback are all bit-identical to each
//! other on Euclidean and inner product (see the `simd` module docs).

use serde::{Deserialize, Serialize};

use crate::simd;

/// The distance function `σ` of the paper (§3.1): any measure comparing two
/// `d`-dimensional vectors. Smaller is closer for every variant.
///
/// ```
/// use mbi_math::Metric;
///
/// let a = [1.0, 0.0];
/// let b = [0.0, 1.0];
/// assert_eq!(Metric::Euclidean.distance(&a, &b), 2.0); // squared
/// assert!((Metric::Angular.distance(&a, &b) - 1.0).abs() < 1e-6);
/// assert_eq!(Metric::Angular.name(), "angular");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Squared Euclidean distance. Monotone in true Euclidean distance, so
    /// nearest-neighbour *rankings* — and therefore recall@k — are identical
    /// while avoiding a `sqrt` per comparison. Used for SIFT1M and GIST1M.
    Euclidean,
    /// Angular (cosine) distance: `1 − cos(u, v)`. Used for MovieLens, COMS,
    /// GloVe-100 and DEEP1B.
    Angular,
    /// Negative inner product: `−⟨u, v⟩`. Not used by the paper's datasets but
    /// common for recommendation embeddings; included because the MBI
    /// structure is metric-agnostic (any `σ` is allowed by Definition 3.1).
    InnerProduct,
}

impl Metric {
    /// Computes the distance between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths (a dimension mismatch is a
    /// programming error, never a data condition).
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        match self {
            Metric::Euclidean => squared_euclidean(a, b),
            Metric::Angular => angular_distance(a, b),
            Metric::InnerProduct => -dot(a, b),
        }
    }

    /// A short lowercase name used in reports (`"euclidean"`, `"angular"`,
    /// `"inner_product"`), mirroring the Distance column of Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Angular => "angular",
            Metric::InnerProduct => "inner_product",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Computes `(⟨a,b⟩, ‖b‖²)` in a single fused pass over both slices.
///
/// The accumulation order per component is identical to running the
/// standalone kernels, so each half of the result is bit-equal to the
/// corresponding standalone kernel (`dot(a, b)` and `dot(b, b)`), while
/// touching `b` only once. This is the workhorse of the prepared-query
/// angular path, where the query norm is already known.
#[inline]
pub(crate) fn dot_norm2(a: &[f32], b: &[f32]) -> (f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    simd::dot_norm2(a, b)
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    simd::squared_euclidean(a, b)
}

/// Inner product `⟨a, b⟩`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    simd::dot(a, b)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Angular (cosine) distance `1 − ⟨a,b⟩ / (‖a‖·‖b‖)`.
///
/// Zero vectors are treated as maximally distant from everything (`1.0`),
/// which keeps the function total; synthetic generators never emit them but a
/// user-supplied query might.
#[inline]
pub fn angular_distance(a: &[f32], b: &[f32]) -> f32 {
    let dp = dot(a, b);
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    // Clamp for numerical safety: floating error can push |cos| past 1.
    let cos = (dp / (na * nb)).clamp(-1.0, 1.0);
    1.0 - cos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn squared_euclidean_basic() {
        approx(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        approx(squared_euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn squared_euclidean_handles_tail() {
        // Length 11 = one chunk of 8 + tail of 3.
        let a: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..11).map(|i| (i + 1) as f32).collect();
        approx(squared_euclidean(&a, &b), 11.0);
    }

    #[test]
    fn dot_basic() {
        approx(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm_basic() {
        approx(norm(&[3.0, 4.0]), 5.0);
        approx(norm(&[0.0; 16]), 0.0);
    }

    #[test]
    fn angular_identical_is_zero() {
        let v = [0.3, -0.7, 0.2, 0.9];
        approx(angular_distance(&v, &v), 0.0);
    }

    #[test]
    fn angular_opposite_is_two() {
        let v = [1.0, 2.0, -1.0];
        let w = [-1.0, -2.0, 1.0];
        approx(angular_distance(&v, &w), 2.0);
    }

    #[test]
    fn angular_orthogonal_is_one() {
        approx(angular_distance(&[1.0, 0.0], &[0.0, 5.0]), 1.0);
    }

    #[test]
    fn angular_scale_invariant() {
        let a = [0.5, 1.5, -2.0, 0.25, 1.0];
        let b = [1.0, -0.5, 0.75, 2.0, -1.0];
        let a2: Vec<f32> = a.iter().map(|x| x * 7.0).collect();
        approx(angular_distance(&a, &b), angular_distance(&a2, &b));
    }

    #[test]
    fn angular_zero_vector_is_max() {
        approx(angular_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn metric_dispatch() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        approx(Metric::Euclidean.distance(&a, &b), 2.0);
        approx(Metric::Angular.distance(&a, &b), 1.0);
        approx(Metric::InnerProduct.distance(&a, &b), 0.0);
        approx(Metric::InnerProduct.distance(&a, &a), -1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn metric_rejects_dim_mismatch() {
        Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::Euclidean.name(), "euclidean");
        assert_eq!(Metric::Angular.name(), "angular");
        assert_eq!(Metric::InnerProduct.name(), "inner_product");
        assert_eq!(Metric::Angular.to_string(), "angular");
    }

    #[test]
    fn dot_norm2_matches_standalone_kernels_bitwise() {
        // Same accumulation order ⇒ bit-equal halves, across chunk tails.
        for len in [1usize, 7, 8, 9, 16, 37, 64, 65] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.91).cos()).collect();
            let (dp, nb2) = dot_norm2(&a, &b);
            assert_eq!(dp.to_bits(), dot(&a, &b).to_bits(), "len={len}");
            assert_eq!(nb2.to_bits(), dot(&b, &b).to_bits(), "len={len}");
        }
    }

    #[test]
    fn kernels_match_naive_implementations() {
        // Cross-check the dispatched kernels against straightforward loops on
        // a length that exercises both the vector body and the scalar tail.
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.91).cos()).collect();
        let naive_se: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let naive_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        approx(squared_euclidean(&a, &b), naive_se);
        approx(dot(&a, &b), naive_dot);
    }
}
