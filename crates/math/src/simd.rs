//! Explicit-SIMD distance kernels with runtime dispatch.
//!
//! Every kernel in this module — scalar, AVX2 and NEON alike — implements the
//! same **canonical accumulation shape**, so the backends are bit-identical to
//! each other and the dispatch decision can never change a distance:
//!
//! * the input is consumed in strides of [`STRIDE`] = 32 floats, split across
//!   [`CHAINS`] = 4 independent 8-lane accumulators (`acc0..acc3`) so the
//!   floating-point dependency chains are short enough to saturate the FMA
//!   ports (the squared-Euclidean kernel uses [`SE_CHAINS`] = 8 chains over
//!   64-float strides — its extra `sub` per group makes the 4-chain loop
//!   front-end-bound);
//! * every multiply-accumulate is a **fused** multiply-add (`f32::mul_add` in
//!   the scalar shape, `vfmadd`/`vfma` in the vector shapes) — IEEE 754
//!   specifies fused rounding exactly, which is what makes the backends agree
//!   bit for bit;
//! * after the strided body the chains are combined lane-wise as
//!   `(acc0 + acc1) + (acc2 + acc3)`, remaining full 8-blocks fold into the
//!   combined vector, the 8 lanes are summed **sequentially** (lane 0 first),
//!   and a scalar tail handles the last `len % 8` elements in order.
//!
//! The active backend is chosen once per process by [`active_backend`]:
//! AVX2+FMA on `x86_64` when the CPU supports it, NEON on `aarch64`, and the
//! scalar shape otherwise. Setting the environment variable
//! `MBI_FORCE_SCALAR=1` (checked once, at first use) forces the scalar
//! fallback — CI runs the math and ann suites both ways to pin the
//! bit-identity contract.
//!
//! The SQ8 kernels scan `u8` scalar-quantized rows (see
//! `mbi-ann`'s segment column): codes are decoded on the fly as
//! `x̂ᵢ = deltaᵢ · codeᵢ + minᵢ` and folded into the same canonical reduction,
//! so a quantized scan touches a quarter of the memory of an `f32` scan.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Virtual SIMD lane width of the canonical shape (8 × `f32` = one AVX2
/// register, two NEON registers).
pub const LANES: usize = 8;
/// Independent accumulator chains per kernel (dot-style kernels).
pub const CHAINS: usize = 4;
/// Floats consumed per unrolled iteration (`LANES * CHAINS`).
pub const STRIDE: usize = LANES * CHAINS;
/// Accumulator chains in the squared-Euclidean kernels. The extra `sub` per
/// 8-lane group makes a 4-chain loop front-end-bound, so Euclidean unrolls
/// twice as deep; the dot-style kernels would gain nothing (they are already
/// port- or bandwidth-bound) and `dot_norm2` would spill registers.
pub const SE_CHAINS: usize = 8;
/// Floats consumed per unrolled iteration of the squared-Euclidean kernels.
pub const SE_STRIDE: usize = LANES * SE_CHAINS;

/// The kernel implementation selected at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar shape built on `f32::mul_add`. Always available; forced
    /// by `MBI_FORCE_SCALAR=1`.
    Scalar,
    /// AVX2 + FMA intrinsics (`x86_64` only).
    Avx2,
    /// NEON intrinsics (`aarch64` only; baseline for that architecture).
    Neon,
}

impl Backend {
    /// Short lowercase name used in bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

const BACKEND_UNINIT: u8 = 0;
const BACKEND_SCALAR: u8 = 1;
const BACKEND_AVX2: u8 = 2;
const BACKEND_NEON: u8 = 3;

static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNINIT);

fn detect_backend() -> u8 {
    if std::env::var("MBI_FORCE_SCALAR").map(|v| v == "1" || v == "true").unwrap_or(false) {
        return BACKEND_SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return BACKEND_AVX2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return BACKEND_NEON;
    }
    #[allow(unreachable_code)]
    BACKEND_SCALAR
}

#[inline]
fn backend_code() -> u8 {
    let b = BACKEND.load(Ordering::Relaxed);
    if b != BACKEND_UNINIT {
        return b;
    }
    let detected = detect_backend();
    BACKEND.store(detected, Ordering::Relaxed);
    detected
}

/// The backend every kernel in this crate dispatches to.
///
/// Decided once per process: the first call reads `MBI_FORCE_SCALAR` and the
/// CPU feature bits; later calls return the cached answer.
pub fn active_backend() -> Backend {
    match backend_code() {
        BACKEND_AVX2 => Backend::Avx2,
        BACKEND_NEON => Backend::Neon,
        _ => Backend::Scalar,
    }
}

/// Dispatches `$f($($args),*)` to the active backend implementation.
macro_rules! dispatch {
    ($f:ident($($args:expr),* $(,)?)) => {
        match backend_code() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: BACKEND_AVX2 is only stored after `is_x86_feature_detected!`
            // confirmed both `avx2` and `fma` on this CPU.
            BACKEND_AVX2 => unsafe { avx2::$f($($args),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64.
            BACKEND_NEON => unsafe { neon::$f($($args),*) },
            _ => scalar::$f($($args),*),
        }
    };
}

// ---------------------------------------------------------------------------
// Dispatched entry points (crate-internal; `kernels`/`metric` wrap them).
// ---------------------------------------------------------------------------

#[inline]
pub(crate) fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    dispatch!(se_row(a, b))
}

#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    dispatch!(dot_row(a, b))
}

#[inline]
pub(crate) fn dot_norm2(a: &[f32], b: &[f32]) -> (f32, f32) {
    dispatch!(dot_norm2_row(a, b))
}

#[inline]
pub(crate) fn euclidean_batch(query: &[f32], rows: &[f32], out: &mut Vec<f32>) {
    dispatch!(euclidean_batch(query, rows, out))
}

#[inline]
pub(crate) fn dot_batch(query: &[f32], rows: &[f32], negate: bool, out: &mut Vec<f32>) {
    dispatch!(dot_batch(query, rows, negate, out))
}

#[inline]
pub(crate) fn angular_batch_cached(
    query: &[f32],
    query_inv_norm: f32,
    rows: &[f32],
    inv_norms: &[f32],
    out: &mut Vec<f32>,
) {
    dispatch!(angular_batch_cached(query, query_inv_norm, rows, inv_norms, out))
}

#[inline]
pub(crate) fn angular_batch_uncached(
    query: &[f32],
    query_inv_norm: f32,
    rows: &[f32],
    out: &mut Vec<f32>,
) {
    dispatch!(angular_batch_uncached(query, query_inv_norm, rows, out))
}

/// Appends `‖query − x̂ᵢ‖²` for each SQ8-coded row of `codes`, decoding
/// `x̂ᵢⱼ = deltaⱼ·codeᵢⱼ + minⱼ` on the fly.
///
/// # Panics
///
/// Panics if `codes.len()` is not a multiple of `query.len()`, or if the
/// per-dimension parameter columns are shorter than `query.len()`.
pub fn sq8_euclidean_batch(
    query: &[f32],
    codes: &[u8],
    mins: &[f32],
    deltas: &[f32],
    out: &mut Vec<f32>,
) {
    sq8_validate(query, codes, mins, deltas);
    out.reserve(codes.len() / query.len());
    dispatch!(sq8_euclidean_batch(query, codes, mins, deltas, out))
}

/// Appends `⟨query, x̂ᵢ⟩` (or `−⟨query, x̂ᵢ⟩` when `negate` is set) for each
/// SQ8-coded row of `codes`, decoding `x̂ᵢⱼ = deltaⱼ·codeᵢⱼ + minⱼ` on the fly.
///
/// # Panics
///
/// Panics if `codes.len()` is not a multiple of `query.len()`, or if the
/// per-dimension parameter columns are shorter than `query.len()`.
pub fn sq8_dot_batch(
    query: &[f32],
    codes: &[u8],
    mins: &[f32],
    deltas: &[f32],
    negate: bool,
    out: &mut Vec<f32>,
) {
    sq8_validate(query, codes, mins, deltas);
    out.reserve(codes.len() / query.len());
    dispatch!(sq8_dot_batch(query, codes, mins, deltas, negate, out))
}

/// Appends `Σⱼ qdⱼ·codeᵢⱼ` for each SQ8-coded row of `codes` — the raw code
/// dot of the expanded-form scan, where `qd` is the query pre-scaled by the
/// per-dimension deltas (`qdⱼ = qⱼ·deltaⱼ`).
///
/// With per-row decoded norms cached at encode time this reconstructs every
/// metric's first-pass distance from one pass over the codes:
/// `⟨q, x̂ᵢ⟩ = ⟨q, min⟩ + Σⱼ qdⱼ·codeᵢⱼ`.
///
/// # Panics
///
/// Panics if `codes.len()` is not a multiple of `qd.len()`.
pub fn sq8_code_dot_batch(qd: &[f32], codes: &[u8], out: &mut Vec<f32>) {
    let dim = qd.len();
    assert!(dim > 0, "query must have at least one dimension");
    assert_eq!(
        codes.len() % dim,
        0,
        "codes length {} is not a multiple of dim {}",
        codes.len(),
        dim
    );
    out.reserve(codes.len() / dim);
    dispatch!(sq8_code_dot_batch(qd, codes, out))
}

/// Single-row [`sq8_code_dot_batch`] — `Σⱼ qdⱼ·codesⱼ` for one SQ8-coded row,
/// bit-identical to the row's entry in the batched output. The graph-search
/// gather path evaluates candidates one row at a time, so it needs a row
/// primitive that goes through the same dispatch.
///
/// # Panics
///
/// Panics if `codes.len() != qd.len()`.
pub fn sq8_code_dot(qd: &[f32], codes: &[u8]) -> f32 {
    assert_eq!(codes.len(), qd.len(), "code row length does not match dim");
    dispatch!(sq8_code_dot_row(qd, codes))
}

#[inline]
fn sq8_validate(query: &[f32], codes: &[u8], mins: &[f32], deltas: &[f32]) {
    let dim = query.len();
    assert!(dim > 0, "query must have at least one dimension");
    assert_eq!(
        codes.len() % dim,
        0,
        "codes length {} is not a multiple of dim {}",
        codes.len(),
        dim
    );
    assert!(mins.len() >= dim && deltas.len() >= dim, "SQ8 parameter columns shorter than dim");
}

#[inline]
fn inv_from_norm2(n2: f32) -> f32 {
    if n2 == 0.0 {
        0.0
    } else {
        1.0 / n2.sqrt()
    }
}

#[inline]
fn angular_from_parts(dp: f32, inv_a: f32, inv_b: f32) -> f32 {
    if inv_a == 0.0 || inv_b == 0.0 {
        return 1.0;
    }
    1.0 - (dp * inv_a * inv_b).clamp(-1.0, 1.0)
}

// ---------------------------------------------------------------------------
// Scalar reference shape.
// ---------------------------------------------------------------------------

/// Portable implementation of the canonical shape.
///
/// This is both the runtime fallback and the reference the SIMD backends are
/// property-tested against (bit-identical for Euclidean/dot, `1e-5` for the
/// derived angular paths). Public so tests and benches can pin a backend
/// without going through the env switch.
pub mod scalar {
    use super::{angular_from_parts, inv_from_norm2, CHAINS, LANES, SE_CHAINS, SE_STRIDE, STRIDE};

    /// One fused step of a reduction: `acc ← fma(x, y, acc)` style updates.
    /// Each kernel supplies its own `step` so the shape is written once.
    #[inline(always)]
    fn reduce(a: &[f32], b: &[f32], step: impl Fn(f32, f32, f32) -> f32) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = [[0.0f32; LANES]; CHAINS];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, chain) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                for (l, slot) in chain.iter_mut().enumerate() {
                    *slot = step(*slot, a[base + l], b[base + l]);
                }
            }
            i += STRIDE;
        }
        let mut v = [0.0f32; LANES];
        for (l, slot) in v.iter_mut().enumerate() {
            *slot = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
        }
        while i + LANES <= n {
            for (l, slot) in v.iter_mut().enumerate() {
                *slot = step(*slot, a[i + l], b[i + l]);
            }
            i += LANES;
        }
        let mut s = v[0];
        for &lane in &v[1..] {
            s += lane;
        }
        while i < n {
            s = step(s, a[i], b[i]);
            i += 1;
        }
        s
    }

    /// Squared Euclidean distance of one row pair (8-chain shape).
    #[inline]
    pub fn se_row(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = [[0.0f32; LANES]; SE_CHAINS];
        let mut i = 0;
        while i + SE_STRIDE <= n {
            for (c, chain) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                for (l, slot) in chain.iter_mut().enumerate() {
                    let d = a[base + l] - b[base + l];
                    *slot = d.mul_add(d, *slot);
                }
            }
            i += SE_STRIDE;
        }
        let mut v = [0.0f32; LANES];
        for (l, slot) in v.iter_mut().enumerate() {
            *slot = ((acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]))
                + ((acc[4][l] + acc[5][l]) + (acc[6][l] + acc[7][l]));
        }
        while i + LANES <= n {
            for (l, slot) in v.iter_mut().enumerate() {
                let d = a[i + l] - b[i + l];
                *slot = d.mul_add(d, *slot);
            }
            i += LANES;
        }
        let mut s = v[0];
        for &lane in &v[1..] {
            s += lane;
        }
        while i < n {
            let d = a[i] - b[i];
            s = d.mul_add(d, s);
            i += 1;
        }
        s
    }

    /// Inner product of one row pair.
    #[inline]
    pub fn dot_row(a: &[f32], b: &[f32]) -> f32 {
        reduce(a, b, |acc, x, y| x.mul_add(y, acc))
    }

    /// Fused `(⟨a,b⟩, ‖b‖²)`; each half is bit-equal to the standalone kernel.
    #[inline]
    pub fn dot_norm2_row(a: &[f32], b: &[f32]) -> (f32, f32) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc_dp = [[0.0f32; LANES]; CHAINS];
        let mut acc_nb = [[0.0f32; LANES]; CHAINS];
        let mut i = 0;
        while i + STRIDE <= n {
            for c in 0..CHAINS {
                let base = i + c * LANES;
                for l in 0..LANES {
                    let (x, y) = (a[base + l], b[base + l]);
                    acc_dp[c][l] = x.mul_add(y, acc_dp[c][l]);
                    acc_nb[c][l] = y.mul_add(y, acc_nb[c][l]);
                }
            }
            i += STRIDE;
        }
        let mut v_dp = [0.0f32; LANES];
        let mut v_nb = [0.0f32; LANES];
        for l in 0..LANES {
            v_dp[l] = (acc_dp[0][l] + acc_dp[1][l]) + (acc_dp[2][l] + acc_dp[3][l]);
            v_nb[l] = (acc_nb[0][l] + acc_nb[1][l]) + (acc_nb[2][l] + acc_nb[3][l]);
        }
        while i + LANES <= n {
            for l in 0..LANES {
                let (x, y) = (a[i + l], b[i + l]);
                v_dp[l] = x.mul_add(y, v_dp[l]);
                v_nb[l] = y.mul_add(y, v_nb[l]);
            }
            i += LANES;
        }
        let mut dp = v_dp[0];
        let mut nb = v_nb[0];
        for l in 1..LANES {
            dp += v_dp[l];
            nb += v_nb[l];
        }
        while i < n {
            let (x, y) = (a[i], b[i]);
            dp = x.mul_add(y, dp);
            nb = y.mul_add(y, nb);
            i += 1;
        }
        (dp, nb)
    }

    /// Batched squared Euclidean distances (appends one value per row).
    pub fn euclidean_batch(query: &[f32], rows: &[f32], out: &mut Vec<f32>) {
        for row in rows.chunks_exact(query.len()) {
            out.push(se_row(query, row));
        }
    }

    /// Batched inner products; `negate` fuses the inner-product metric's sign
    /// flip into the same pass.
    pub fn dot_batch(query: &[f32], rows: &[f32], negate: bool, out: &mut Vec<f32>) {
        if negate {
            for row in rows.chunks_exact(query.len()) {
                out.push(-dot_row(query, row));
            }
        } else {
            for row in rows.chunks_exact(query.len()) {
                out.push(dot_row(query, row));
            }
        }
    }

    /// Batched angular distances against a cached inverse-norm column.
    pub fn angular_batch_cached(
        query: &[f32],
        query_inv_norm: f32,
        rows: &[f32],
        inv_norms: &[f32],
        out: &mut Vec<f32>,
    ) {
        for (row, &inv_b) in rows.chunks_exact(query.len()).zip(inv_norms) {
            out.push(angular_from_parts(dot_row(query, row), query_inv_norm, inv_b));
        }
    }

    /// Batched angular distances recovering each row norm in the same pass.
    pub fn angular_batch_uncached(
        query: &[f32],
        query_inv_norm: f32,
        rows: &[f32],
        out: &mut Vec<f32>,
    ) {
        for row in rows.chunks_exact(query.len()) {
            let (dp, nb2) = dot_norm2_row(query, row);
            out.push(angular_from_parts(dp, query_inv_norm, inv_from_norm2(nb2)));
        }
    }

    /// Squared Euclidean distance of `query` against one SQ8-coded row
    /// (`x̂ᵢ = deltaᵢ·codeᵢ + minᵢ`).
    #[inline]
    pub fn sq8_se_row(query: &[f32], codes: &[u8], mins: &[f32], deltas: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), codes.len());
        let n = query.len();
        let mut acc = [[0.0f32; LANES]; CHAINS];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, chain) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                for (l, slot) in chain.iter_mut().enumerate() {
                    let j = base + l;
                    let x = deltas[j].mul_add(codes[j] as f32, mins[j]);
                    let d = query[j] - x;
                    *slot = d.mul_add(d, *slot);
                }
            }
            i += STRIDE;
        }
        let mut v = [0.0f32; LANES];
        for (l, slot) in v.iter_mut().enumerate() {
            *slot = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
        }
        while i + LANES <= n {
            for (l, slot) in v.iter_mut().enumerate() {
                let j = i + l;
                let x = deltas[j].mul_add(codes[j] as f32, mins[j]);
                let d = query[j] - x;
                *slot = d.mul_add(d, *slot);
            }
            i += LANES;
        }
        let mut s = v[0];
        for &lane in &v[1..] {
            s += lane;
        }
        while i < n {
            let x = deltas[i].mul_add(codes[i] as f32, mins[i]);
            let d = query[i] - x;
            s = d.mul_add(d, s);
            i += 1;
        }
        s
    }

    /// Inner product of `query` against one SQ8-coded row.
    #[inline]
    pub fn sq8_dot_row(query: &[f32], codes: &[u8], mins: &[f32], deltas: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), codes.len());
        let n = query.len();
        let mut acc = [[0.0f32; LANES]; CHAINS];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, chain) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                for (l, slot) in chain.iter_mut().enumerate() {
                    let j = base + l;
                    let x = deltas[j].mul_add(codes[j] as f32, mins[j]);
                    *slot = query[j].mul_add(x, *slot);
                }
            }
            i += STRIDE;
        }
        let mut v = [0.0f32; LANES];
        for (l, slot) in v.iter_mut().enumerate() {
            *slot = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
        }
        while i + LANES <= n {
            for (l, slot) in v.iter_mut().enumerate() {
                let j = i + l;
                let x = deltas[j].mul_add(codes[j] as f32, mins[j]);
                *slot = query[j].mul_add(x, *slot);
            }
            i += LANES;
        }
        let mut s = v[0];
        for &lane in &v[1..] {
            s += lane;
        }
        while i < n {
            let x = deltas[i].mul_add(codes[i] as f32, mins[i]);
            s = query[i].mul_add(x, s);
            i += 1;
        }
        s
    }

    /// Batched SQ8 squared Euclidean scan.
    pub fn sq8_euclidean_batch(
        query: &[f32],
        codes: &[u8],
        mins: &[f32],
        deltas: &[f32],
        out: &mut Vec<f32>,
    ) {
        for row in codes.chunks_exact(query.len()) {
            out.push(sq8_se_row(query, row, mins, deltas));
        }
    }

    /// Batched SQ8 inner-product scan; `negate` fuses the sign flip.
    pub fn sq8_dot_batch(
        query: &[f32],
        codes: &[u8],
        mins: &[f32],
        deltas: &[f32],
        negate: bool,
        out: &mut Vec<f32>,
    ) {
        if negate {
            for row in codes.chunks_exact(query.len()) {
                out.push(-sq8_dot_row(query, row, mins, deltas));
            }
        } else {
            for row in codes.chunks_exact(query.len()) {
                out.push(sq8_dot_row(query, row, mins, deltas));
            }
        }
    }

    /// `Σⱼ qdⱼ · codeⱼ` for one coded row: the raw code dot used by the
    /// expanded-form SQ8 scan (`qd` is the query pre-scaled by the deltas).
    #[inline]
    pub fn sq8_code_dot_row(qd: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(qd.len(), codes.len());
        let n = qd.len();
        let mut acc = [[0.0f32; LANES]; CHAINS];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, chain) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                for (l, slot) in chain.iter_mut().enumerate() {
                    *slot = qd[base + l].mul_add(codes[base + l] as f32, *slot);
                }
            }
            i += STRIDE;
        }
        let mut v = [0.0f32; LANES];
        for (l, slot) in v.iter_mut().enumerate() {
            *slot = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
        }
        while i + LANES <= n {
            for (l, slot) in v.iter_mut().enumerate() {
                *slot = qd[i + l].mul_add(codes[i + l] as f32, *slot);
            }
            i += LANES;
        }
        let mut s = v[0];
        for &lane in &v[1..] {
            s += lane;
        }
        while i < n {
            s = qd[i].mul_add(codes[i] as f32, s);
            i += 1;
        }
        s
    }

    /// Batched raw code dots (appends one value per coded row).
    pub fn sq8_code_dot_batch(qd: &[f32], codes: &[u8], out: &mut Vec<f32>) {
        for row in codes.chunks_exact(qd.len()) {
            out.push(sq8_code_dot_row(qd, row));
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA backend.
// ---------------------------------------------------------------------------

/// AVX2+FMA implementation of the canonical shape (`x86_64` only).
///
/// # Safety
///
/// Every function in this module requires the `avx2` and `fma` CPU features;
/// callers must check `is_x86_feature_detected!` first (the dispatcher does).
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::{angular_from_parts, inv_from_norm2, LANES, SE_STRIDE, STRIDE};
    use std::arch::x86_64::*;

    /// Sums the 8 lanes of `v` sequentially (lane 0 first), matching the
    /// scalar shape's ordered horizontal sum.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum_ordered(v: __m256) -> f32 {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        let mut s = lanes[0];
        for &l in &lanes[1..] {
            s += l;
        }
        s
    }

    /// Whether this backend can run on the current CPU.
    pub fn available() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    /// Squared Euclidean distance of one row pair.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `a` and `b` must have equal lengths.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn se_row(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = [_mm256_setzero_ps(); 8];
        let mut i = 0;
        while i + SE_STRIDE <= n {
            for (c, slot) in acc.iter_mut().enumerate() {
                // SAFETY: i + 64 <= n, so every 8-lane load is in bounds.
                let base = i + c * LANES;
                let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(base)), _mm256_loadu_ps(pb.add(base)));
                *slot = _mm256_fmadd_ps(d, d, *slot);
            }
            i += SE_STRIDE;
        }
        let mut v = _mm256_add_ps(
            _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3])),
            _mm256_add_ps(_mm256_add_ps(acc[4], acc[5]), _mm256_add_ps(acc[6], acc[7])),
        );
        while i + LANES <= n {
            // SAFETY: i + 8 <= n.
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            v = _mm256_fmadd_ps(d, d, v);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            // SAFETY: i < n.
            let d = *pa.add(i) - *pb.add(i);
            s = d.mul_add(d, s);
            i += 1;
        }
        s
    }

    /// Inner product of one row pair.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `a` and `b` must have equal lengths.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_row(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + STRIDE <= n {
            // SAFETY: i + 32 <= n.
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
                acc3,
            );
            i += STRIDE;
        }
        let mut v = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        while i + LANES <= n {
            // SAFETY: i + 8 <= n.
            v = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), v);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            // SAFETY: i < n.
            s = (*pa.add(i)).mul_add(*pb.add(i), s);
            i += 1;
        }
        s
    }

    /// Fused `(⟨a,b⟩, ‖b‖²)`; each half is bit-equal to the standalone kernel.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `a` and `b` must have equal lengths.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_norm2_row(a: &[f32], b: &[f32]) -> (f32, f32) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut dp0 = _mm256_setzero_ps();
        let mut dp1 = _mm256_setzero_ps();
        let mut dp2 = _mm256_setzero_ps();
        let mut dp3 = _mm256_setzero_ps();
        let mut nb0 = _mm256_setzero_ps();
        let mut nb1 = _mm256_setzero_ps();
        let mut nb2 = _mm256_setzero_ps();
        let mut nb3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + STRIDE <= n {
            // SAFETY: i + 32 <= n.
            let (x0, y0) = (_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let (x1, y1) = (_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)));
            let (x2, y2) = (_mm256_loadu_ps(pa.add(i + 16)), _mm256_loadu_ps(pb.add(i + 16)));
            let (x3, y3) = (_mm256_loadu_ps(pa.add(i + 24)), _mm256_loadu_ps(pb.add(i + 24)));
            dp0 = _mm256_fmadd_ps(x0, y0, dp0);
            nb0 = _mm256_fmadd_ps(y0, y0, nb0);
            dp1 = _mm256_fmadd_ps(x1, y1, dp1);
            nb1 = _mm256_fmadd_ps(y1, y1, nb1);
            dp2 = _mm256_fmadd_ps(x2, y2, dp2);
            nb2 = _mm256_fmadd_ps(y2, y2, nb2);
            dp3 = _mm256_fmadd_ps(x3, y3, dp3);
            nb3 = _mm256_fmadd_ps(y3, y3, nb3);
            i += STRIDE;
        }
        let mut vdp = _mm256_add_ps(_mm256_add_ps(dp0, dp1), _mm256_add_ps(dp2, dp3));
        let mut vnb = _mm256_add_ps(_mm256_add_ps(nb0, nb1), _mm256_add_ps(nb2, nb3));
        while i + LANES <= n {
            // SAFETY: i + 8 <= n.
            let (x, y) = (_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            vdp = _mm256_fmadd_ps(x, y, vdp);
            vnb = _mm256_fmadd_ps(y, y, vnb);
            i += LANES;
        }
        let mut dp = hsum_ordered(vdp);
        let mut nb = hsum_ordered(vnb);
        while i < n {
            // SAFETY: i < n.
            let (x, y) = (*pa.add(i), *pb.add(i));
            dp = x.mul_add(y, dp);
            nb = y.mul_add(y, nb);
            i += 1;
        }
        (dp, nb)
    }

    /// Batched squared Euclidean distances.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `rows.len()` must be a multiple of `query.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn euclidean_batch(query: &[f32], rows: &[f32], out: &mut Vec<f32>) {
        for row in rows.chunks_exact(query.len()) {
            out.push(se_row(query, row));
        }
    }

    /// Batched inner products; `negate` fuses the sign flip.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `rows.len()` must be a multiple of `query.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_batch(query: &[f32], rows: &[f32], negate: bool, out: &mut Vec<f32>) {
        if negate {
            for row in rows.chunks_exact(query.len()) {
                out.push(-dot_row(query, row));
            }
        } else {
            for row in rows.chunks_exact(query.len()) {
                out.push(dot_row(query, row));
            }
        }
    }

    /// Batched angular distances against a cached inverse-norm column.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. One `inv_norms` entry per row.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn angular_batch_cached(
        query: &[f32],
        query_inv_norm: f32,
        rows: &[f32],
        inv_norms: &[f32],
        out: &mut Vec<f32>,
    ) {
        for (row, &inv_b) in rows.chunks_exact(query.len()).zip(inv_norms) {
            out.push(angular_from_parts(dot_row(query, row), query_inv_norm, inv_b));
        }
    }

    /// Batched angular distances recovering each row norm in the same pass.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `rows.len()` must be a multiple of `query.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn angular_batch_uncached(
        query: &[f32],
        query_inv_norm: f32,
        rows: &[f32],
        out: &mut Vec<f32>,
    ) {
        for row in rows.chunks_exact(query.len()) {
            let (dp, nb2) = dot_norm2_row(query, row);
            out.push(angular_from_parts(dp, query_inv_norm, inv_from_norm2(nb2)));
        }
    }

    /// Decodes 8 consecutive SQ8 codes starting at `p` to `f32` lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `p` must be valid for reading 8 bytes.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load8_codes(p: *const u8) -> __m256 {
        // SAFETY: caller guarantees 8 readable bytes at `p`.
        let bytes = _mm_loadl_epi64(p as *const __m128i);
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes))
    }

    /// Squared Euclidean distance of `query` against one SQ8-coded row.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `codes`, `mins`, `deltas` must be at least
    /// `query.len()` long.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq8_se_row(query: &[f32], codes: &[u8], mins: &[f32], deltas: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), codes.len());
        let n = query.len();
        let (pq, pc, pm, pd) = (query.as_ptr(), codes.as_ptr(), mins.as_ptr(), deltas.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + STRIDE <= n {
            // SAFETY: i + 32 <= n for all four streams.
            let x0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i)),
                load8_codes(pc.add(i)),
                _mm256_loadu_ps(pm.add(i)),
            );
            let x1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i + 8)),
                load8_codes(pc.add(i + 8)),
                _mm256_loadu_ps(pm.add(i + 8)),
            );
            let x2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i + 16)),
                load8_codes(pc.add(i + 16)),
                _mm256_loadu_ps(pm.add(i + 16)),
            );
            let x3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i + 24)),
                load8_codes(pc.add(i + 24)),
                _mm256_loadu_ps(pm.add(i + 24)),
            );
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pq.add(i)), x0);
            let d1 = _mm256_sub_ps(_mm256_loadu_ps(pq.add(i + 8)), x1);
            let d2 = _mm256_sub_ps(_mm256_loadu_ps(pq.add(i + 16)), x2);
            let d3 = _mm256_sub_ps(_mm256_loadu_ps(pq.add(i + 24)), x3);
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            i += STRIDE;
        }
        let mut v = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        while i + LANES <= n {
            // SAFETY: i + 8 <= n.
            let x = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i)),
                load8_codes(pc.add(i)),
                _mm256_loadu_ps(pm.add(i)),
            );
            let d = _mm256_sub_ps(_mm256_loadu_ps(pq.add(i)), x);
            v = _mm256_fmadd_ps(d, d, v);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            // SAFETY: i < n.
            let x = (*pd.add(i)).mul_add(*pc.add(i) as f32, *pm.add(i));
            let d = *pq.add(i) - x;
            s = d.mul_add(d, s);
            i += 1;
        }
        s
    }

    /// Inner product of `query` against one SQ8-coded row.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `codes`, `mins`, `deltas` must be at least
    /// `query.len()` long.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq8_dot_row(query: &[f32], codes: &[u8], mins: &[f32], deltas: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), codes.len());
        let n = query.len();
        let (pq, pc, pm, pd) = (query.as_ptr(), codes.as_ptr(), mins.as_ptr(), deltas.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + STRIDE <= n {
            // SAFETY: i + 32 <= n for all four streams.
            let x0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i)),
                load8_codes(pc.add(i)),
                _mm256_loadu_ps(pm.add(i)),
            );
            let x1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i + 8)),
                load8_codes(pc.add(i + 8)),
                _mm256_loadu_ps(pm.add(i + 8)),
            );
            let x2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i + 16)),
                load8_codes(pc.add(i + 16)),
                _mm256_loadu_ps(pm.add(i + 16)),
            );
            let x3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i + 24)),
                load8_codes(pc.add(i + 24)),
                _mm256_loadu_ps(pm.add(i + 24)),
            );
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), x0, acc0);
            acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i + 8)), x1, acc1);
            acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i + 16)), x2, acc2);
            acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i + 24)), x3, acc3);
            i += STRIDE;
        }
        let mut v = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        while i + LANES <= n {
            // SAFETY: i + 8 <= n.
            let x = _mm256_fmadd_ps(
                _mm256_loadu_ps(pd.add(i)),
                load8_codes(pc.add(i)),
                _mm256_loadu_ps(pm.add(i)),
            );
            v = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), x, v);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            // SAFETY: i < n.
            let x = (*pd.add(i)).mul_add(*pc.add(i) as f32, *pm.add(i));
            s = (*pq.add(i)).mul_add(x, s);
            i += 1;
        }
        s
    }

    /// Batched SQ8 squared Euclidean scan.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `codes.len()` must be a multiple of
    /// `query.len()`; `mins`/`deltas` hold one entry per dimension.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq8_euclidean_batch(
        query: &[f32],
        codes: &[u8],
        mins: &[f32],
        deltas: &[f32],
        out: &mut Vec<f32>,
    ) {
        for row in codes.chunks_exact(query.len()) {
            out.push(sq8_se_row(query, row, mins, deltas));
        }
    }

    /// Batched SQ8 inner-product scan; `negate` fuses the sign flip.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `codes.len()` must be a multiple of
    /// `query.len()`; `mins`/`deltas` hold one entry per dimension.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq8_dot_batch(
        query: &[f32],
        codes: &[u8],
        mins: &[f32],
        deltas: &[f32],
        negate: bool,
        out: &mut Vec<f32>,
    ) {
        if negate {
            for row in codes.chunks_exact(query.len()) {
                out.push(-sq8_dot_row(query, row, mins, deltas));
            }
        } else {
            for row in codes.chunks_exact(query.len()) {
                out.push(sq8_dot_row(query, row, mins, deltas));
            }
        }
    }

    /// `Σⱼ qdⱼ · codeⱼ` for one coded row (expanded-form SQ8 scan).
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `qd` and `codes` must have equal lengths.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq8_code_dot_row(qd: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(qd.len(), codes.len());
        let n = qd.len();
        let (pq, pc) = (qd.as_ptr(), codes.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + STRIDE <= n {
            // SAFETY: i + 32 <= n for both streams.
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), load8_codes(pc.add(i)), acc0);
            acc1 =
                _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i + 8)), load8_codes(pc.add(i + 8)), acc1);
            acc2 =
                _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i + 16)), load8_codes(pc.add(i + 16)), acc2);
            acc3 =
                _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i + 24)), load8_codes(pc.add(i + 24)), acc3);
            i += STRIDE;
        }
        let mut v = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        while i + LANES <= n {
            // SAFETY: i + 8 <= n.
            v = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), load8_codes(pc.add(i)), v);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            // SAFETY: i < n.
            s = (*pq.add(i)).mul_add(*pc.add(i) as f32, s);
            i += 1;
        }
        s
    }

    /// Batched raw code dots.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA. `codes.len()` must be a multiple of `qd.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq8_code_dot_batch(qd: &[f32], codes: &[u8], out: &mut Vec<f32>) {
        for row in codes.chunks_exact(qd.len()) {
            out.push(sq8_code_dot_row(qd, row));
        }
    }
}

// ---------------------------------------------------------------------------
// NEON backend.
// ---------------------------------------------------------------------------

/// NEON implementation of the canonical shape (`aarch64` only).
///
/// Each virtual 8-lane accumulator is a pair of `float32x4_t` registers; the
/// chains, lane-wise combine and ordered horizontal sum mirror the scalar
/// shape exactly, and `vfmaq_f32` is a fused multiply-add, so results are
/// bit-identical to the scalar fallback.
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use super::{angular_from_parts, inv_from_norm2, LANES, SE_STRIDE, STRIDE};
    use std::arch::aarch64::*;

    /// One virtual 8-lane accumulator (two q-registers).
    #[derive(Clone, Copy)]
    struct V8(float32x4_t, float32x4_t);

    /// # Safety: NEON is baseline on aarch64.
    #[inline]
    unsafe fn v8_zero() -> V8 {
        V8(vdupq_n_f32(0.0), vdupq_n_f32(0.0))
    }

    /// # Safety: `p` must be valid for reading 8 floats.
    #[inline]
    unsafe fn v8_load(p: *const f32) -> V8 {
        V8(vld1q_f32(p), vld1q_f32(p.add(4)))
    }

    #[inline]
    unsafe fn v8_add(a: V8, b: V8) -> V8 {
        V8(vaddq_f32(a.0, b.0), vaddq_f32(a.1, b.1))
    }

    #[inline]
    unsafe fn v8_fma(acc: V8, x: V8, y: V8) -> V8 {
        V8(vfmaq_f32(acc.0, x.0, y.0), vfmaq_f32(acc.1, x.1, y.1))
    }

    #[inline]
    unsafe fn v8_sub(a: V8, b: V8) -> V8 {
        V8(vsubq_f32(a.0, b.0), vsubq_f32(a.1, b.1))
    }

    /// Ordered horizontal sum (lane 0 first), matching the scalar shape.
    #[inline]
    unsafe fn hsum_ordered(v: V8) -> f32 {
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), v.0);
        vst1q_f32(lanes.as_mut_ptr().add(4), v.1);
        let mut s = lanes[0];
        for &l in &lanes[1..] {
            s += l;
        }
        s
    }

    /// Squared Euclidean distance of one row pair.
    ///
    /// # Safety
    ///
    /// `a` and `b` must have equal lengths.
    pub unsafe fn se_row(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = [v8_zero(); 8];
        let mut i = 0;
        while i + SE_STRIDE <= n {
            for (c, slot) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                let d = v8_sub(v8_load(pa.add(base)), v8_load(pb.add(base)));
                *slot = v8_fma(*slot, d, d);
            }
            i += SE_STRIDE;
        }
        let mut v = v8_add(
            v8_add(v8_add(acc[0], acc[1]), v8_add(acc[2], acc[3])),
            v8_add(v8_add(acc[4], acc[5]), v8_add(acc[6], acc[7])),
        );
        while i + LANES <= n {
            let d = v8_sub(v8_load(pa.add(i)), v8_load(pb.add(i)));
            v = v8_fma(v, d, d);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            s = d.mul_add(d, s);
            i += 1;
        }
        s
    }

    /// Inner product of one row pair.
    ///
    /// # Safety
    ///
    /// `a` and `b` must have equal lengths.
    pub unsafe fn dot_row(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = [v8_zero(); 4];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, slot) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                *slot = v8_fma(*slot, v8_load(pa.add(base)), v8_load(pb.add(base)));
            }
            i += STRIDE;
        }
        let mut v = v8_add(v8_add(acc[0], acc[1]), v8_add(acc[2], acc[3]));
        while i + LANES <= n {
            v = v8_fma(v, v8_load(pa.add(i)), v8_load(pb.add(i)));
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            s = (*pa.add(i)).mul_add(*pb.add(i), s);
            i += 1;
        }
        s
    }

    /// Fused `(⟨a,b⟩, ‖b‖²)`.
    ///
    /// # Safety
    ///
    /// `a` and `b` must have equal lengths.
    pub unsafe fn dot_norm2_row(a: &[f32], b: &[f32]) -> (f32, f32) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc_dp = [v8_zero(); 4];
        let mut acc_nb = [v8_zero(); 4];
        let mut i = 0;
        while i + STRIDE <= n {
            for c in 0..4 {
                let base = i + c * LANES;
                let x = v8_load(pa.add(base));
                let y = v8_load(pb.add(base));
                acc_dp[c] = v8_fma(acc_dp[c], x, y);
                acc_nb[c] = v8_fma(acc_nb[c], y, y);
            }
            i += STRIDE;
        }
        let mut vdp = v8_add(v8_add(acc_dp[0], acc_dp[1]), v8_add(acc_dp[2], acc_dp[3]));
        let mut vnb = v8_add(v8_add(acc_nb[0], acc_nb[1]), v8_add(acc_nb[2], acc_nb[3]));
        while i + LANES <= n {
            let x = v8_load(pa.add(i));
            let y = v8_load(pb.add(i));
            vdp = v8_fma(vdp, x, y);
            vnb = v8_fma(vnb, y, y);
            i += LANES;
        }
        let mut dp = hsum_ordered(vdp);
        let mut nb = hsum_ordered(vnb);
        while i < n {
            let (x, y) = (*pa.add(i), *pb.add(i));
            dp = x.mul_add(y, dp);
            nb = y.mul_add(y, nb);
            i += 1;
        }
        (dp, nb)
    }

    /// Batched squared Euclidean distances.
    ///
    /// # Safety
    ///
    /// `rows.len()` must be a multiple of `query.len()`.
    pub unsafe fn euclidean_batch(query: &[f32], rows: &[f32], out: &mut Vec<f32>) {
        for row in rows.chunks_exact(query.len()) {
            out.push(se_row(query, row));
        }
    }

    /// Batched inner products; `negate` fuses the sign flip.
    ///
    /// # Safety
    ///
    /// `rows.len()` must be a multiple of `query.len()`.
    pub unsafe fn dot_batch(query: &[f32], rows: &[f32], negate: bool, out: &mut Vec<f32>) {
        if negate {
            for row in rows.chunks_exact(query.len()) {
                out.push(-dot_row(query, row));
            }
        } else {
            for row in rows.chunks_exact(query.len()) {
                out.push(dot_row(query, row));
            }
        }
    }

    /// Batched angular distances against a cached inverse-norm column.
    ///
    /// # Safety
    ///
    /// One `inv_norms` entry per row.
    pub unsafe fn angular_batch_cached(
        query: &[f32],
        query_inv_norm: f32,
        rows: &[f32],
        inv_norms: &[f32],
        out: &mut Vec<f32>,
    ) {
        for (row, &inv_b) in rows.chunks_exact(query.len()).zip(inv_norms) {
            out.push(angular_from_parts(dot_row(query, row), query_inv_norm, inv_b));
        }
    }

    /// Batched angular distances recovering each row norm in the same pass.
    ///
    /// # Safety
    ///
    /// `rows.len()` must be a multiple of `query.len()`.
    pub unsafe fn angular_batch_uncached(
        query: &[f32],
        query_inv_norm: f32,
        rows: &[f32],
        out: &mut Vec<f32>,
    ) {
        for row in rows.chunks_exact(query.len()) {
            let (dp, nb2) = dot_norm2_row(query, row);
            out.push(angular_from_parts(dp, query_inv_norm, inv_from_norm2(nb2)));
        }
    }

    /// Decodes 8 consecutive SQ8 codes starting at `p` to two f32 quads.
    ///
    /// # Safety
    ///
    /// `p` must be valid for reading 8 bytes.
    #[inline]
    unsafe fn load8_codes(p: *const u8) -> V8 {
        let bytes = vld1_u8(p);
        let wide = vmovl_u8(bytes);
        let lo = vcvtq_f32_u32(vmovl_u16(vget_low_u16(wide)));
        let hi = vcvtq_f32_u32(vmovl_u16(vget_high_u16(wide)));
        V8(lo, hi)
    }

    /// Squared Euclidean distance of `query` against one SQ8-coded row.
    ///
    /// # Safety
    ///
    /// `codes`, `mins`, `deltas` must be at least `query.len()` long.
    pub unsafe fn sq8_se_row(query: &[f32], codes: &[u8], mins: &[f32], deltas: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), codes.len());
        let n = query.len();
        let (pq, pc, pm, pd) = (query.as_ptr(), codes.as_ptr(), mins.as_ptr(), deltas.as_ptr());
        let mut acc = [v8_zero(); 4];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, slot) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                let x =
                    v8_fma(v8_load(pm.add(base)), v8_load(pd.add(base)), load8_codes(pc.add(base)));
                let d = v8_sub(v8_load(pq.add(base)), x);
                *slot = v8_fma(*slot, d, d);
            }
            i += STRIDE;
        }
        let mut v = v8_add(v8_add(acc[0], acc[1]), v8_add(acc[2], acc[3]));
        while i + LANES <= n {
            let x = v8_fma(v8_load(pm.add(i)), v8_load(pd.add(i)), load8_codes(pc.add(i)));
            let d = v8_sub(v8_load(pq.add(i)), x);
            v = v8_fma(v, d, d);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            let x = (*pd.add(i)).mul_add(*pc.add(i) as f32, *pm.add(i));
            let d = *pq.add(i) - x;
            s = d.mul_add(d, s);
            i += 1;
        }
        s
    }

    /// Inner product of `query` against one SQ8-coded row.
    ///
    /// # Safety
    ///
    /// `codes`, `mins`, `deltas` must be at least `query.len()` long.
    pub unsafe fn sq8_dot_row(query: &[f32], codes: &[u8], mins: &[f32], deltas: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), codes.len());
        let n = query.len();
        let (pq, pc, pm, pd) = (query.as_ptr(), codes.as_ptr(), mins.as_ptr(), deltas.as_ptr());
        let mut acc = [v8_zero(); 4];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, slot) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                let x =
                    v8_fma(v8_load(pm.add(base)), v8_load(pd.add(base)), load8_codes(pc.add(base)));
                *slot = v8_fma(*slot, v8_load(pq.add(base)), x);
            }
            i += STRIDE;
        }
        let mut v = v8_add(v8_add(acc[0], acc[1]), v8_add(acc[2], acc[3]));
        while i + LANES <= n {
            let x = v8_fma(v8_load(pm.add(i)), v8_load(pd.add(i)), load8_codes(pc.add(i)));
            v = v8_fma(v, v8_load(pq.add(i)), x);
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            let x = (*pd.add(i)).mul_add(*pc.add(i) as f32, *pm.add(i));
            s = (*pq.add(i)).mul_add(x, s);
            i += 1;
        }
        s
    }

    /// Batched SQ8 squared Euclidean scan.
    ///
    /// # Safety
    ///
    /// `codes.len()` must be a multiple of `query.len()`.
    pub unsafe fn sq8_euclidean_batch(
        query: &[f32],
        codes: &[u8],
        mins: &[f32],
        deltas: &[f32],
        out: &mut Vec<f32>,
    ) {
        for row in codes.chunks_exact(query.len()) {
            out.push(sq8_se_row(query, row, mins, deltas));
        }
    }

    /// Batched SQ8 inner-product scan; `negate` fuses the sign flip.
    ///
    /// # Safety
    ///
    /// `codes.len()` must be a multiple of `query.len()`.
    pub unsafe fn sq8_dot_batch(
        query: &[f32],
        codes: &[u8],
        mins: &[f32],
        deltas: &[f32],
        negate: bool,
        out: &mut Vec<f32>,
    ) {
        if negate {
            for row in codes.chunks_exact(query.len()) {
                out.push(-sq8_dot_row(query, row, mins, deltas));
            }
        } else {
            for row in codes.chunks_exact(query.len()) {
                out.push(sq8_dot_row(query, row, mins, deltas));
            }
        }
    }

    /// `Σⱼ qdⱼ · codeⱼ` for one coded row (expanded-form SQ8 scan).
    ///
    /// # Safety
    ///
    /// `qd` and `codes` must have equal lengths.
    pub unsafe fn sq8_code_dot_row(qd: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(qd.len(), codes.len());
        let n = qd.len();
        let (pq, pc) = (qd.as_ptr(), codes.as_ptr());
        let mut acc = [v8_zero(); 4];
        let mut i = 0;
        while i + STRIDE <= n {
            for (c, slot) in acc.iter_mut().enumerate() {
                let base = i + c * LANES;
                *slot = v8_fma(*slot, v8_load(pq.add(base)), load8_codes(pc.add(base)));
            }
            i += STRIDE;
        }
        let mut v = v8_add(v8_add(acc[0], acc[1]), v8_add(acc[2], acc[3]));
        while i + LANES <= n {
            v = v8_fma(v, v8_load(pq.add(i)), load8_codes(pc.add(i)));
            i += LANES;
        }
        let mut s = hsum_ordered(v);
        while i < n {
            s = (*pq.add(i)).mul_add(*pc.add(i) as f32, s);
            i += 1;
        }
        s
    }

    /// Batched raw code dots.
    ///
    /// # Safety
    ///
    /// `codes.len()` must be a multiple of `qd.len()`.
    pub unsafe fn sq8_code_dot_batch(qd: &[f32], codes: &[u8], out: &mut Vec<f32>) {
        for row in codes.chunks_exact(qd.len()) {
            out.push(sq8_code_dot_row(qd, row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn backend_is_detected_once() {
        let b = active_backend();
        assert_eq!(active_backend(), b);
        assert!(!b.name().is_empty());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_scalar_bitwise() {
        if !avx2::available() {
            return;
        }
        for dim in [1usize, 7, 8, 9, 31, 32, 33, 63, 64, 65, 130, 960] {
            let a = vec_of(dim, 11);
            let b = vec_of(dim, 23);
            // SAFETY: availability checked above.
            unsafe {
                assert_eq!(
                    avx2::se_row(&a, &b).to_bits(),
                    scalar::se_row(&a, &b).to_bits(),
                    "se dim={dim}"
                );
                assert_eq!(
                    avx2::dot_row(&a, &b).to_bits(),
                    scalar::dot_row(&a, &b).to_bits(),
                    "dot dim={dim}"
                );
                let (dp_v, nb_v) = avx2::dot_norm2_row(&a, &b);
                let (dp_s, nb_s) = scalar::dot_norm2_row(&a, &b);
                assert_eq!(dp_v.to_bits(), dp_s.to_bits(), "dp dim={dim}");
                assert_eq!(nb_v.to_bits(), nb_s.to_bits(), "nb dim={dim}");
            }
        }
    }

    #[test]
    fn scalar_dot_norm2_halves_match_standalone() {
        for dim in [1usize, 7, 9, 33, 130] {
            let a = vec_of(dim, 5);
            let b = vec_of(dim, 9);
            let (dp, nb) = scalar::dot_norm2_row(&a, &b);
            assert_eq!(dp.to_bits(), scalar::dot_row(&a, &b).to_bits());
            assert_eq!(nb.to_bits(), scalar::dot_row(&b, &b).to_bits());
        }
    }

    #[test]
    fn sq8_kernels_agree_across_backends() {
        for dim in [1usize, 7, 9, 33, 130] {
            let q = vec_of(dim, 3);
            let codes: Vec<u8> = (0..dim * 3).map(|i| (i * 37 % 256) as u8).collect();
            let mins = vec_of(dim, 17);
            let deltas: Vec<f32> = vec_of(dim, 19).iter().map(|x| x.abs() / 255.0).collect();
            let mut se_s = Vec::new();
            let mut dp_s = Vec::new();
            let mut cd_s = Vec::new();
            let qd: Vec<f32> = q.iter().zip(&deltas).map(|(x, d)| x * d).collect();
            scalar::sq8_euclidean_batch(&q, &codes, &mins, &deltas, &mut se_s);
            scalar::sq8_dot_batch(&q, &codes, &mins, &deltas, true, &mut dp_s);
            scalar::sq8_code_dot_batch(&qd, &codes, &mut cd_s);
            #[cfg(target_arch = "x86_64")]
            if avx2::available() {
                let mut se_v = Vec::new();
                let mut dp_v = Vec::new();
                let mut cd_v = Vec::new();
                // SAFETY: availability checked above.
                unsafe {
                    avx2::sq8_euclidean_batch(&q, &codes, &mins, &deltas, &mut se_v);
                    avx2::sq8_dot_batch(&q, &codes, &mins, &deltas, true, &mut dp_v);
                    avx2::sq8_code_dot_batch(&qd, &codes, &mut cd_v);
                }
                for i in 0..se_s.len() {
                    assert_eq!(se_v[i].to_bits(), se_s[i].to_bits(), "sq8 se dim={dim} i={i}");
                    assert_eq!(dp_v[i].to_bits(), dp_s[i].to_bits(), "sq8 dot dim={dim} i={i}");
                    assert_eq!(cd_v[i].to_bits(), cd_s[i].to_bits(), "sq8 cd dim={dim} i={i}");
                }
            }
            // Expanded form reconstructs the direct decode-dot to fp tolerance:
            // ⟨q,x̂⟩ = ⟨q,min⟩ + Σ qdⱼ·codeⱼ.
            let qm: f32 = q.iter().zip(&mins).map(|(x, m)| x * m).sum();
            for (i, &cd) in cd_s.iter().enumerate() {
                let direct = -dp_s[i];
                let expanded = qm + cd;
                let tol = 1e-4 * direct.abs().max(1.0);
                assert!(
                    (expanded - direct).abs() <= tol,
                    "dim={dim} i={i}: {expanded} vs {direct}"
                );
            }
        }
    }
}
