//! Streaming summary statistics (Welford's algorithm).
//!
//! The experiment harness reports mean/min/max/stddev of per-query latencies
//! and per-insert times; Welford's update is numerically stable and needs one
//! pass and O(1) memory, so it can run inside timing loops without skewing
//! them.

use serde::{Deserialize, Serialize};

/// One-pass mean/variance/min/max accumulator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`] — in particular `min` starts at `+∞`
    /// and `max` at `−∞`, so the first observation sets both (a derived
    /// all-zero default would silently clamp `min` to 0).
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `+∞` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `−∞` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel Welford / Chan).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        approx(s.mean(), 0.0);
        approx(s.variance(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn default_equals_new() {
        // Regression: a derived Default once initialised min to 0.0, which
        // silently clamped every later minimum.
        let mut s = OnlineStats::default();
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
        s.push(100.0);
        assert_eq!(s.min(), 100.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        approx(s.mean(), 5.0);
        approx(s.variance(), 4.0);
        approx(s.stddev(), 2.0);
        approx(s.min(), 2.0);
        approx(s.max(), 9.0);
        approx(s.sum(), 40.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        approx(s.variance(), 0.0);
        approx(s.mean(), 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        approx(a.mean(), all.mean());
        approx(a.variance(), all.variance());
        approx(a.min(), all.min());
        approx(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        approx(a.mean(), before.mean());
        assert_eq!(a.count(), 2);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        approx(empty.mean(), before.mean());
        assert_eq!(empty.count(), 2);
    }
}
