//! Bounded top-k selection.
//!
//! §3.2.1 of the paper notes that BSBF's brute-force stage costs `O(m log k)`
//! when "a max-heap of size k is used". [`TopK`] is exactly that heap; it is
//! also used to merge per-block results in MBI's query process (Algorithm 4,
//! line 9) and to hold the result set `R` of the graph search (Algorithm 2).

use crate::OrderedF32;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A candidate result: a vector id and its distance to the query.
///
/// Ordering is by distance, then by id (for deterministic tie-breaking —
/// §3.1 of the paper assigns ties an arbitrary but fixed order, and
/// deterministic output makes recall measurements reproducible).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Identifier of the data vector (position in its store).
    pub id: u32,
    /// Distance from the query under the active [`crate::Metric`].
    pub dist: f32,
}

impl Neighbor {
    /// Creates a new neighbor entry.
    #[inline]
    pub fn new(id: u32, dist: f32) -> Self {
        Neighbor { id, dist }
    }

    #[inline]
    fn key(&self) -> (OrderedF32, u32) {
        (OrderedF32(self.dist), self.id)
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A bounded max-heap keeping the `k` smallest-distance [`Neighbor`]s seen.
///
/// `push` is `O(log k)`; `into_sorted_vec` yields ascending distance order.
/// With `k == 0` the structure accepts pushes but retains nothing, which lets
/// callers treat degenerate queries uniformly.
///
/// ```
/// use mbi_math::TopK;
///
/// let mut top = TopK::new(2);
/// for (id, dist) in [(0, 3.0), (1, 1.0), (2, 2.0), (3, 9.0)] {
///     top.offer(id, dist);
/// }
/// let best = top.into_sorted_vec();
/// assert_eq!(best.len(), 2);
/// assert_eq!((best[0].id, best[1].id), (1, 2));
/// ```
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a collector for the `k` nearest entries.
    pub fn new(k: usize) -> Self {
        TopK { k, heap: BinaryHeap::with_capacity(k.saturating_add(1)) }
    }

    /// Clears the collector and re-arms it for `k` entries, keeping the
    /// heap's allocation. This is what lets a reused search scratch run
    /// queries of varying `k` without touching the allocator.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    /// Capacity `k` this collector was created with.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently retained (`≤ k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `k` entries are retained (the heap is saturated).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The current worst (largest) retained distance, or `+∞` while the
    /// collector is not yet full. This is the pruning bound used by
    /// brute-force scans: a candidate can be skipped iff its distance is not
    /// below this value.
    #[inline]
    pub fn worst(&self) -> f32 {
        if self.is_full() {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        } else {
            f32::INFINITY
        }
    }

    /// Offers a candidate; returns `true` if it was retained.
    #[inline]
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(n);
            return true;
        }
        // Full: replace the worst entry iff strictly better (distance, id).
        let worst = self.heap.peek().expect("heap is full and k > 0, so peek succeeds");
        if n < *worst {
            self.heap.pop();
            self.heap.push(n);
            true
        } else {
            false
        }
    }

    /// Offers `(id, dist)`; returns `true` if retained.
    #[inline]
    pub fn offer(&mut self, id: u32, dist: f32) -> bool {
        self.push(Neighbor::new(id, dist))
    }

    /// Consumes the collector, returning retained entries sorted by ascending
    /// distance (ties by ascending id).
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Merges another collector's retained entries into this one.
    pub fn merge(&mut self, other: TopK) {
        for n in other.heap {
            self.push(n);
        }
    }

    /// Iterates over retained entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Neighbor> {
        self.heap.iter()
    }
}

/// Exact top-k via selection: partition the `k` smallest entries to the
/// front with `select_nth_unstable` (`O(n)` expected), then sort only those
/// `k` survivors. Hot in BSBF tail scans with large windows, where sorting
/// the full candidate list was pure waste.
pub fn topk_by_sort(mut items: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    if k == 0 {
        items.clear();
        return items;
    }
    if items.len() > k {
        items.select_nth_unstable(k - 1);
        items.truncate(k);
    }
    items.sort_unstable();
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32, d: f32) -> Neighbor {
        Neighbor::new(id, d)
    }

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.offer(i as u32, *d);
        }
        let out = t.into_sorted_vec();
        assert_eq!(out, vec![n(1, 1.0), n(3, 2.0), n(4, 3.0)]);
    }

    #[test]
    fn fewer_than_k_returns_all() {
        let mut t = TopK::new(10);
        t.offer(0, 2.0);
        t.offer(1, 1.0);
        let out = t.into_sorted_vec();
        assert_eq!(out, vec![n(1, 1.0), n(0, 2.0)]);
    }

    #[test]
    fn zero_k_retains_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.offer(0, 1.0));
        assert!(t.is_empty());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn worst_tracks_pruning_bound() {
        let mut t = TopK::new(2);
        assert_eq!(t.worst(), f32::INFINITY);
        t.offer(0, 5.0);
        assert_eq!(t.worst(), f32::INFINITY, "not full yet");
        t.offer(1, 3.0);
        assert_eq!(t.worst(), 5.0);
        t.offer(2, 4.0);
        assert_eq!(t.worst(), 4.0);
    }

    #[test]
    fn ties_break_by_id() {
        let mut t = TopK::new(2);
        t.offer(7, 1.0);
        t.offer(3, 1.0);
        t.offer(5, 1.0);
        let out = t.into_sorted_vec();
        assert_eq!(out, vec![n(3, 1.0), n(5, 1.0)]);
    }

    #[test]
    fn equal_candidate_does_not_replace() {
        let mut t = TopK::new(1);
        t.offer(2, 1.0);
        assert!(!t.offer(5, 1.0), "same dist, larger id must not replace");
        assert!(t.offer(1, 1.0), "same dist, smaller id replaces");
        assert_eq!(t.into_sorted_vec(), vec![n(1, 1.0)]);
    }

    #[test]
    fn merge_combines_collectors() {
        let mut a = TopK::new(3);
        a.offer(0, 1.0);
        a.offer(1, 9.0);
        let mut b = TopK::new(3);
        b.offer(2, 2.0);
        b.offer(3, 3.0);
        a.merge(b);
        let out = a.into_sorted_vec();
        assert_eq!(out, vec![n(0, 1.0), n(2, 2.0), n(3, 3.0)]);
    }

    #[test]
    fn matches_sort_reference() {
        // Deterministic pseudo-random cross-check against topk_by_sort.
        let mut state = 0x9E3779B9u32;
        let mut items = Vec::new();
        for i in 0..500u32 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            items.push(n(i, (state >> 8) as f32 / 1e6));
        }
        for k in [0usize, 1, 7, 100, 499, 500, 600] {
            let mut t = TopK::new(k);
            for it in &items {
                t.push(*it);
            }
            assert_eq!(t.into_sorted_vec(), topk_by_sort(items.clone(), k), "k={k}");
        }
    }

    #[test]
    fn sort_reference_handles_ties_and_degenerate_k() {
        // Duplicated distances exercise the selection pivot on equal keys.
        let items: Vec<Neighbor> =
            [(9u32, 1.0f32), (2, 1.0), (5, 0.5), (7, 1.0), (0, 2.0), (3, 0.5)]
                .into_iter()
                .map(|(id, d)| n(id, d))
                .collect();
        assert_eq!(topk_by_sort(items.clone(), 0), vec![]);
        assert_eq!(topk_by_sort(items.clone(), 3), vec![n(3, 0.5), n(5, 0.5), n(2, 1.0)]);
        let mut all = items.clone();
        all.sort_unstable();
        assert_eq!(topk_by_sort(items.clone(), 6), all);
        assert_eq!(topk_by_sort(items, 100), all);
    }

    #[test]
    fn reset_reuses_allocation_across_k() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0].iter().enumerate() {
            t.offer(i as u32, *d);
        }
        t.reset(2);
        assert!(t.is_empty());
        assert_eq!(t.k(), 2);
        for (i, d) in [9.0, 3.0, 6.0, 2.0].iter().enumerate() {
            t.offer(i as u32, *d);
        }
        assert_eq!(t.into_sorted_vec(), vec![n(3, 2.0), n(1, 3.0)]);
    }

    #[test]
    fn iter_exposes_retained() {
        let mut t = TopK::new(2);
        t.offer(0, 1.0);
        t.offer(1, 2.0);
        let mut ids: Vec<u32> = t.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }
}
