//! Property-based tests for the numeric foundations.

use mbi_math::{
    angular_batch, angular_distance, dot, dot_batch, inv_norm_of, norm, squared_euclidean,
    squared_euclidean_batch, topk_by_sort, Metric, Neighbor, OnlineStats, OrderedF32,
    PreparedQuery, TopK,
};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000.0f32..1000.0, len)
}

/// Carves a query plus `n` rows of dimension `dim` out of a flat value pool.
/// Dims 1..=257 exercise the chunked kernels' vector body *and* scalar tail
/// (the vendored proptest has no `prop_flat_map`, hence the slicing).
fn carve_query_and_rows(dim: usize, n: usize, pool: &[f32]) -> (&[f32], &[f32]) {
    (&pool[..dim], &pool[dim..dim * (n + 1)])
}

/// Pool strategy sized for the worst case of `carve_query_and_rows`
/// (dim 257, 5 rows + the query).
fn value_pool() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, 257 * 6)
}

proptest! {
    #[test]
    fn squared_euclidean_is_symmetric(a in finite_vec(1..64), seed in 0u64..1000) {
        let b: Vec<f32> = a.iter().enumerate()
            .map(|(i, x)| x + ((seed as f32 + i as f32) * 0.3).sin())
            .collect();
        let ab = squared_euclidean(&a, &b);
        let ba = squared_euclidean(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
    }

    #[test]
    fn squared_euclidean_identity(a in finite_vec(1..64)) {
        prop_assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn squared_euclidean_nonnegative(a in finite_vec(1..32), b in finite_vec(1..32)) {
        let n = a.len().min(b.len());
        prop_assert!(squared_euclidean(&a[..n], &b[..n]) >= 0.0);
    }

    #[test]
    fn dot_is_bilinear_in_scalar(a in finite_vec(1..32), c in -10.0f32..10.0) {
        let b: Vec<f32> = a.iter().rev().cloned().collect();
        let scaled: Vec<f32> = a.iter().map(|x| x * c).collect();
        let lhs = dot(&scaled, &b);
        let rhs = c * dot(&a, &b);
        prop_assert!((lhs - rhs).abs() <= 1e-2 * rhs.abs().max(1.0));
    }

    #[test]
    fn angular_distance_in_range(a in finite_vec(2..32)) {
        let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
        let d = angular_distance(&a, &b);
        prop_assert!((-1e-6..=2.0 + 1e-6).contains(&d), "d = {}", d);
    }

    #[test]
    fn norm_triangle_inequality(a in finite_vec(4..16)) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert!(norm(&sum) <= norm(&a) + norm(&b) + 1e-2);
    }

    #[test]
    fn ordered_f32_sort_is_total(mut xs in prop::collection::vec(any::<f32>(), 0..64)) {
        let mut wrapped: Vec<OrderedF32> = xs.iter().copied().map(OrderedF32).collect();
        wrapped.sort();
        // sort() must not panic and must be idempotent.
        let again = {
            let mut w = wrapped.clone();
            w.sort();
            w
        };
        prop_assert_eq!(wrapped.len(), again.len());
        for (a, b) in wrapped.iter().zip(&again) {
            prop_assert_eq!(a.get().to_bits(), b.get().to_bits());
        }
        xs.clear();
    }

    #[test]
    fn topk_matches_sorting(
        dists in prop::collection::vec(0.0f32..1000.0, 0..200),
        k in 0usize..32
    ) {
        let items: Vec<Neighbor> = dists
            .iter()
            .enumerate()
            .map(|(i, d)| Neighbor::new(i as u32, *d))
            .collect();
        let mut t = TopK::new(k);
        for it in &items {
            t.push(*it);
        }
        let got = t.into_sorted_vec();
        let mut expect = items;
        expect.sort_unstable();
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn topk_worst_is_max_retained(
        dists in prop::collection::vec(0.0f32..100.0, 1..100),
        k in 1usize..16
    ) {
        let mut t = TopK::new(k);
        for (i, d) in dists.iter().enumerate() {
            t.offer(i as u32, *d);
        }
        let full = t.is_full();
        let worst = t.worst();
        let max_kept = t
            .iter()
            .map(|n| OrderedF32(n.dist))
            .max()
            .map(|o| o.get())
            .unwrap();
        if full {
            prop_assert_eq!(worst, max_kept);
        } else {
            prop_assert_eq!(worst, f32::INFINITY);
        }
    }

    #[test]
    fn online_stats_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
    }

    #[test]
    fn batched_kernels_agree_with_scalar_across_dims(
        dim in 1usize..258,
        n in 1usize..6,
        pool in value_pool(),
    ) {
        let (q, rows) = carve_query_and_rows(dim, n, &pool);
        let inv: Vec<f32> = rows.chunks_exact(dim).map(inv_norm_of).collect();
        let q_inv = inv_norm_of(q);

        let (mut se, mut dp, mut ang_c, mut ang_u) = (vec![], vec![], vec![], vec![]);
        squared_euclidean_batch(q, rows, &mut se);
        dot_batch(q, rows, &mut dp);
        angular_batch(q, q_inv, rows, Some(&inv), &mut ang_c);
        angular_batch(q, q_inv, rows, None, &mut ang_u);

        for (i, row) in rows.chunks_exact(dim).enumerate() {
            // Euclidean / dot: bit-identical to the per-call kernels.
            prop_assert_eq!(se[i].to_bits(), squared_euclidean(q, row).to_bits());
            prop_assert_eq!(dp[i].to_bits(), dot(q, row).to_bits());
            // Angular: within 1e-5 of the three-pass scalar kernel, cached
            // and uncached alike.
            let scalar = angular_distance(q, row);
            prop_assert!((ang_c[i] - scalar).abs() <= 1e-5, "cached: {} vs {}", ang_c[i], scalar);
            prop_assert!((ang_u[i] - scalar).abs() <= 1e-5, "uncached: {} vs {}", ang_u[i], scalar);
        }
    }

    #[test]
    fn prepared_query_agrees_with_metric_across_dims(
        dim in 1usize..258,
        n in 1usize..6,
        pool in value_pool(),
    ) {
        let (q, rows) = carve_query_and_rows(dim, n, &pool);
        let inv: Vec<f32> = rows.chunks_exact(dim).map(inv_norm_of).collect();
        for metric in [Metric::Euclidean, Metric::Angular, Metric::InnerProduct] {
            let pq = PreparedQuery::new(metric, q);
            let mut batch = Vec::new();
            pq.distance_batch(rows, Some(&inv), &mut batch);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                let scalar = metric.distance(q, row);
                if metric == Metric::Angular {
                    prop_assert!((pq.distance_to(row) - scalar).abs() <= 1e-5);
                    prop_assert!((pq.distance_to_cached(row, inv[i]) - scalar).abs() <= 1e-5);
                    prop_assert!((batch[i] - scalar).abs() <= 1e-5);
                } else {
                    prop_assert_eq!(pq.distance_to(row).to_bits(), scalar.to_bits());
                    prop_assert_eq!(pq.distance_to_cached(row, inv[i]).to_bits(), scalar.to_bits());
                    prop_assert_eq!(batch[i].to_bits(), scalar.to_bits());
                }
            }
        }
    }

    #[test]
    fn cached_angular_preserves_topk_ids(
        dim in 1usize..258,
        n in 1usize..6,
        pool in value_pool(),
        k in 1usize..5,
    ) {
        // The tentpole ranking contract: ranking by the cached kernel keeps
        // the same top-k ID set as the scalar kernel, up to genuine 1e-5
        // near-ties.
        let (q, rows) = carve_query_and_rows(dim, n, &pool);
        let q_inv = inv_norm_of(q);
        let inv: Vec<f32> = rows.chunks_exact(dim).map(inv_norm_of).collect();
        let mut cached = Vec::new();
        angular_batch(q, q_inv, rows, Some(&inv), &mut cached);
        let scalar: Vec<f32> = rows.chunks_exact(dim).map(|r| angular_distance(q, r)).collect();

        let top = |d: &[f32]| {
            let items: Vec<Neighbor> =
                d.iter().enumerate().map(|(i, &x)| Neighbor::new(i as u32, x)).collect();
            topk_by_sort(items, k)
        };
        let (a, b) = (top(&cached), top(&scalar));
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Per-rank distances agree; an ID swap is only legal on a near-tie.
            prop_assert!((x.dist - y.dist).abs() <= 1e-5, "{} vs {}", x.dist, y.dist);
            if x.id != y.id {
                prop_assert!((scalar[x.id as usize] - scalar[y.id as usize]).abs() <= 2e-5);
            }
        }
    }

    #[test]
    fn topk_by_sort_matches_full_sort(
        dists in prop::collection::vec(0.0f32..100.0, 0..120),
        k in 0usize..140,
    ) {
        // Duplicate-heavy distances (coarse grid) stress tie handling in the
        // selection pivot.
        let items: Vec<Neighbor> = dists
            .iter()
            .enumerate()
            .map(|(i, d)| Neighbor::new(i as u32, (d * 4.0).round() / 4.0))
            .collect();
        let mut expect = items.clone();
        expect.sort_unstable();
        expect.truncate(k);
        prop_assert_eq!(topk_by_sort(items, k), expect);
    }

    #[test]
    fn metric_distance_identity_is_minimal(a in finite_vec(2..32)) {
        // For Euclidean and Angular, no vector is closer to `a` than `a` itself.
        let shifted: Vec<f32> = a.iter().map(|x| x + 3.0).collect();
        for m in [Metric::Euclidean, Metric::Angular] {
            let self_d = m.distance(&a, &a);
            let other_d = m.distance(&a, &shifted);
            prop_assert!(self_d <= other_d + 1e-4, "{m}: {self_d} vs {other_d}");
        }
    }
}
