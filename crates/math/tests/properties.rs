//! Property-based tests for the numeric foundations.

use mbi_math::{
    angular_distance, dot, norm, squared_euclidean, Metric, Neighbor, OnlineStats, OrderedF32, TopK,
};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000.0f32..1000.0, len)
}

proptest! {
    #[test]
    fn squared_euclidean_is_symmetric(a in finite_vec(1..64), seed in 0u64..1000) {
        let b: Vec<f32> = a.iter().enumerate()
            .map(|(i, x)| x + ((seed as f32 + i as f32) * 0.3).sin())
            .collect();
        let ab = squared_euclidean(&a, &b);
        let ba = squared_euclidean(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
    }

    #[test]
    fn squared_euclidean_identity(a in finite_vec(1..64)) {
        prop_assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn squared_euclidean_nonnegative(a in finite_vec(1..32), b in finite_vec(1..32)) {
        let n = a.len().min(b.len());
        prop_assert!(squared_euclidean(&a[..n], &b[..n]) >= 0.0);
    }

    #[test]
    fn dot_is_bilinear_in_scalar(a in finite_vec(1..32), c in -10.0f32..10.0) {
        let b: Vec<f32> = a.iter().rev().cloned().collect();
        let scaled: Vec<f32> = a.iter().map(|x| x * c).collect();
        let lhs = dot(&scaled, &b);
        let rhs = c * dot(&a, &b);
        prop_assert!((lhs - rhs).abs() <= 1e-2 * rhs.abs().max(1.0));
    }

    #[test]
    fn angular_distance_in_range(a in finite_vec(2..32)) {
        let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
        let d = angular_distance(&a, &b);
        prop_assert!((-1e-6..=2.0 + 1e-6).contains(&d), "d = {}", d);
    }

    #[test]
    fn norm_triangle_inequality(a in finite_vec(4..16)) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert!(norm(&sum) <= norm(&a) + norm(&b) + 1e-2);
    }

    #[test]
    fn ordered_f32_sort_is_total(mut xs in prop::collection::vec(any::<f32>(), 0..64)) {
        let mut wrapped: Vec<OrderedF32> = xs.iter().copied().map(OrderedF32).collect();
        wrapped.sort();
        // sort() must not panic and must be idempotent.
        let again = {
            let mut w = wrapped.clone();
            w.sort();
            w
        };
        prop_assert_eq!(wrapped.len(), again.len());
        for (a, b) in wrapped.iter().zip(&again) {
            prop_assert_eq!(a.get().to_bits(), b.get().to_bits());
        }
        xs.clear();
    }

    #[test]
    fn topk_matches_sorting(
        dists in prop::collection::vec(0.0f32..1000.0, 0..200),
        k in 0usize..32
    ) {
        let items: Vec<Neighbor> = dists
            .iter()
            .enumerate()
            .map(|(i, d)| Neighbor::new(i as u32, *d))
            .collect();
        let mut t = TopK::new(k);
        for it in &items {
            t.push(*it);
        }
        let got = t.into_sorted_vec();
        let mut expect = items;
        expect.sort_unstable();
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn topk_worst_is_max_retained(
        dists in prop::collection::vec(0.0f32..100.0, 1..100),
        k in 1usize..16
    ) {
        let mut t = TopK::new(k);
        for (i, d) in dists.iter().enumerate() {
            t.offer(i as u32, *d);
        }
        let full = t.is_full();
        let worst = t.worst();
        let max_kept = t
            .iter()
            .map(|n| OrderedF32(n.dist))
            .max()
            .map(|o| o.get())
            .unwrap();
        if full {
            prop_assert_eq!(worst, max_kept);
        } else {
            prop_assert_eq!(worst, f32::INFINITY);
        }
    }

    #[test]
    fn online_stats_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
    }

    #[test]
    fn metric_distance_identity_is_minimal(a in finite_vec(2..32)) {
        // For Euclidean and Angular, no vector is closer to `a` than `a` itself.
        let shifted: Vec<f32> = a.iter().map(|x| x + 3.0).collect();
        for m in [Metric::Euclidean, Metric::Angular] {
            let self_d = m.distance(&a, &a);
            let other_d = m.distance(&a, &shifted);
            prop_assert!(self_d <= other_d + 1e-4, "{m}: {self_d} vs {other_d}");
        }
    }
}
