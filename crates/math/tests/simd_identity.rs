//! Property tests pinning the SIMD dispatch contract: whatever backend is
//! active (AVX2, NEON, or the scalar fallback — forced via `MBI_FORCE_SCALAR`
//! in one CI leg), the Euclidean and inner-product kernels are bit-identical
//! to the portable scalar reference shape, and the angular paths agree with
//! the three-pass scalar formula to within `1e-5`.

use mbi_math::simd::{self, scalar};
use mbi_math::{
    angular_batch, angular_distance, dot, dot_batch, inv_norm_of, neg_dot_batch, squared_euclidean,
    squared_euclidean_batch,
};
use proptest::prelude::*;

/// The dims the ISSUE calls out: none is a multiple of the 8-lane width, and
/// 130 exercises stride (32), full-block (8) and scalar tails at once. 32 and
/// 960 pin the aligned fast paths.
const DIMS: [usize; 7] = [1, 7, 9, 33, 130, 32, 960];

const MAX_DIM: usize = 960;
const MAX_ROWS: usize = 4;

fn value_pool() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, MAX_DIM * (MAX_ROWS + 1))
}

proptest! {
    #[test]
    fn dispatched_euclidean_and_dot_are_bit_identical_to_scalar_reference(
        dim_idx in 0usize..DIMS.len(),
        n in 1usize..=MAX_ROWS,
        pool in value_pool(),
    ) {
        let dim = DIMS[dim_idx];
        let q = &pool[..dim];
        let rows = &pool[dim..dim * (n + 1)];

        let (mut se, mut dp, mut ndp) = (vec![], vec![], vec![]);
        squared_euclidean_batch(q, rows, &mut se);
        dot_batch(q, rows, &mut dp);
        neg_dot_batch(q, rows, &mut ndp);

        let (mut se_ref, mut dp_ref, mut ndp_ref) = (vec![], vec![], vec![]);
        scalar::euclidean_batch(q, rows, &mut se_ref);
        scalar::dot_batch(q, rows, false, &mut dp_ref);
        scalar::dot_batch(q, rows, true, &mut ndp_ref);

        for i in 0..n {
            prop_assert_eq!(se[i].to_bits(), se_ref[i].to_bits(), "se dim={} i={}", dim, i);
            prop_assert_eq!(dp[i].to_bits(), dp_ref[i].to_bits(), "dot dim={} i={}", dim, i);
            prop_assert_eq!(ndp[i].to_bits(), ndp_ref[i].to_bits(), "neg dim={} i={}", dim, i);
            // The fused negation is exactly the negated dot, and the per-call
            // kernels dispatch through the same single-row primitives.
            prop_assert_eq!(ndp[i].to_bits(), (-dp[i]).to_bits());
            let row = &rows[i * dim..(i + 1) * dim];
            prop_assert_eq!(se[i].to_bits(), squared_euclidean(q, row).to_bits());
            prop_assert_eq!(dp[i].to_bits(), dot(q, row).to_bits());
        }
    }

    #[test]
    fn dispatched_angular_agrees_with_scalar_formula(
        dim_idx in 0usize..DIMS.len(),
        n in 1usize..=MAX_ROWS,
        pool in value_pool(),
    ) {
        let dim = DIMS[dim_idx];
        let q = &pool[..dim];
        let rows = &pool[dim..dim * (n + 1)];
        let q_inv = inv_norm_of(q);
        let inv: Vec<f32> = rows.chunks_exact(dim).map(inv_norm_of).collect();

        let (mut cached, mut uncached) = (vec![], vec![]);
        angular_batch(q, q_inv, rows, Some(&inv), &mut cached);
        angular_batch(q, q_inv, rows, None, &mut uncached);

        for (i, row) in rows.chunks_exact(dim).enumerate() {
            let reference = angular_distance(q, row);
            prop_assert!((cached[i] - reference).abs() <= 1e-5,
                "cached dim={} i={}: {} vs {}", dim, i, cached[i], reference);
            prop_assert!((uncached[i] - reference).abs() <= 1e-5,
                "uncached dim={} i={}: {} vs {}", dim, i, uncached[i], reference);
        }
    }

    #[test]
    fn dispatched_sq8_kernels_are_bit_identical_to_scalar_reference(
        dim_idx in 0usize..DIMS.len(),
        n in 1usize..=MAX_ROWS,
        pool in value_pool(),
        codes in prop::collection::vec(any::<u8>(), MAX_DIM * MAX_ROWS),
    ) {
        let dim = DIMS[dim_idx];
        let q = &pool[..dim];
        let mins = &pool[dim..2 * dim];
        let deltas: Vec<f32> = pool[2 * dim..3 * dim].iter().map(|x| x.abs() / 255.0).collect();
        let codes = &codes[..dim * n];

        let (mut se, mut dp) = (vec![], vec![]);
        simd::sq8_euclidean_batch(q, codes, mins, &deltas, &mut se);
        simd::sq8_dot_batch(q, codes, mins, &deltas, true, &mut dp);

        let (mut se_ref, mut dp_ref) = (vec![], vec![]);
        scalar::sq8_euclidean_batch(q, codes, mins, &deltas, &mut se_ref);
        scalar::sq8_dot_batch(q, codes, mins, &deltas, true, &mut dp_ref);

        for i in 0..n {
            prop_assert_eq!(se[i].to_bits(), se_ref[i].to_bits(), "sq8 se dim={} i={}", dim, i);
            prop_assert_eq!(dp[i].to_bits(), dp_ref[i].to_bits(), "sq8 dot dim={} i={}", dim, i);
        }
    }
}

/// Not a proptest, but belongs with these: the env-forced scalar fallback and
/// the feature-dispatched path must report which backend won so CI can assert
/// the leg it intended to pin actually ran.
#[test]
fn forced_scalar_env_is_respected() {
    let forced =
        std::env::var("MBI_FORCE_SCALAR").map(|v| v == "1" || v == "true").unwrap_or(false);
    if forced {
        assert_eq!(simd::active_backend(), simd::Backend::Scalar);
    }
}
