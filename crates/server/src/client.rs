//! Clients for both protocols: [`BinaryClient`] for the framed binary
//! protocol, and a minimal [`http_request`] helper the tests and bench use
//! against the JSON endpoints.

use crate::wire::{self, Op, Status};
use mbi_core::{TimeWindow, TknnResult};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded-exponential retry with jitter for connects and transient
/// transport failures on **idempotent** calls (query/stats/health/ping —
/// an insert is never blindly resent: the client cannot know whether the
/// server applied it before the connection died).
///
/// The follower's replication link reuses this policy for its reconnect
/// backoff.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failure (default 4; `0` disables retrying).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles each retry (default 50 ms).
    pub initial_backoff: Duration,
    /// Backoff ceiling (default 2 s).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-resilience behaviour).
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..Self::default() }
    }

    /// The jittered backoff before retry `attempt` (0-based): half the
    /// bounded-exponential base plus a random slice of the other half, so
    /// a herd of clients reconnecting after one outage spreads out instead
    /// of stampeding in lockstep.
    pub fn backoff(&self, attempt: usize, rng: &mut u64) -> Duration {
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << attempt.min(16) as u32)
            .min(self.max_backoff);
        let half = base / 2;
        half + base.mul_f64(0.5 * (xorshift(rng) % 1024) as f64 / 1024.0)
    }
}

/// A tiny xorshift64 step — enough spread for backoff jitter without
/// pulling a PRNG crate into the client.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = (*state).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Seeds jitter from the wall clock (the only entropy `std` offers).
pub(crate) fn jitter_seed() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e37_79b9_7f4a_7c15)
        | 1
}

/// Errors a client call can return.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a non-OK status.
    Server {
        /// The response status.
        status: Status,
        /// The server's message (or decoded payload summary).
        message: String,
    },
    /// The response payload did not decode.
    Protocol(String),
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server error {status:?}: {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

/// A query answer from the binary protocol.
pub struct QueryReply {
    /// The top-k results.
    pub results: Vec<TknnResult>,
    /// The query rode a coalesced batch.
    pub coalesced: bool,
    /// The deadline expired; results are partial.
    pub timed_out: bool,
}

/// One authenticated binary-protocol connection. Idempotent calls
/// (query/stats/health/ping) transparently reconnect and retry on transient
/// transport errors per the client's [`RetryPolicy`]; inserts never do.
pub struct BinaryClient {
    stream: TcpStream,
    peer: SocketAddr,
    tenant: String,
    token: String,
    retry: RetryPolicy,
    rng: u64,
    timeout: Option<Duration>,
}

impl BinaryClient {
    /// Connects, sends the protocol magic, and authenticates as
    /// `(tenant, token)`, retrying the connect itself per the default
    /// [`RetryPolicy`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        token: &str,
    ) -> Result<BinaryClient, ClientError> {
        Self::connect_with_retry(addr, tenant, token, RetryPolicy::default())
    }

    /// [`BinaryClient::connect`] with an explicit retry policy
    /// ([`RetryPolicy::none`] restores fail-fast behaviour).
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        tenant: &str,
        token: &str,
        retry: RetryPolicy,
    ) -> Result<BinaryClient, ClientError> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let mut rng = jitter_seed();
        let mut attempt = 0usize;
        let stream = loop {
            match Self::dial(peer, tenant, token, None) {
                Ok(s) => break s,
                // Auth/protocol rejections are deterministic; only
                // transport errors are worth retrying.
                Err(e @ (ClientError::Server { .. } | ClientError::Protocol(_))) => return Err(e),
                Err(ClientError::Io(e)) => {
                    if attempt >= retry.max_retries {
                        return Err(ClientError::Io(e));
                    }
                    std::thread::sleep(retry.backoff(attempt, &mut rng));
                    attempt += 1;
                }
            }
        };
        Ok(BinaryClient {
            stream,
            peer,
            tenant: tenant.to_string(),
            token: token.to_string(),
            retry,
            rng,
            timeout: None,
        })
    }

    /// One fresh authenticated connection to `peer`.
    fn dial(
        peer: SocketAddr,
        tenant: &str,
        token: &str,
        timeout: Option<Duration>,
    ) -> Result<TcpStream, ClientError> {
        let mut stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(timeout)?;
        stream.write_all(&wire::MAGIC)?;
        let payload = wire::PayloadWriter::new().str16(tenant).str16(token).build();
        wire::write_frame(&mut stream, Op::Auth as u8, payload.as_slice())?;
        let Some((tag, body)) = wire::read_frame(&mut stream)? else {
            return Err(ClientError::Protocol("server closed mid-call".into()));
        };
        match Status::from_u8(tag) {
            Some(Status::Ok) => Ok(stream),
            Some(status) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(&body).into_owned(),
            }),
            None => Err(ClientError::Protocol(format!("unknown status byte {tag}"))),
        }
    }

    /// Re-dials and re-authenticates after a transport failure.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = Self::dial(self.peer, &self.tenant, &self.token, self.timeout)?;
        Ok(())
    }

    /// Sets a receive timeout on the connection (it survives reconnects).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.timeout = timeout;
        self.stream.set_read_timeout(timeout)
    }

    /// One raw round-trip; returns the status and untouched payload bytes.
    fn call_raw(&mut self, op: Op, payload: &[u8]) -> Result<(Status, Vec<u8>), ClientError> {
        wire::write_frame(&mut self.stream, op as u8, payload)?;
        let Some((tag, body)) = wire::read_frame(&mut self.stream)? else {
            return Err(ClientError::Protocol("server closed mid-call".into()));
        };
        match Status::from_u8(tag) {
            Some(status) => Ok((status, body)),
            None => Err(ClientError::Protocol(format!("unknown status byte {tag}"))),
        }
    }

    /// [`Self::call_raw`] with reconnect-and-retry on transport errors —
    /// only safe for idempotent ops. A clean close mid-call
    /// (`Protocol("server closed mid-call")`) retries too: for a read-only
    /// op the work was either not done or safely repeatable.
    fn call_raw_idempotent(
        &mut self,
        op: Op,
        payload: &[u8],
    ) -> Result<(Status, Vec<u8>), ClientError> {
        let mut attempt = 0usize;
        loop {
            let err = match self.call_raw(op, payload) {
                Ok(reply) => return Ok(reply),
                Err(e @ ClientError::Server { .. }) => return Err(e),
                Err(e) => e,
            };
            if attempt >= self.retry.max_retries {
                return Err(err);
            }
            std::thread::sleep(self.retry.backoff(attempt, &mut self.rng));
            attempt += 1;
            // A failed reconnect consumes the attempt; keep looping until
            // the budget runs out.
            let _ = self.reconnect();
        }
    }

    fn call(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        match self.call_raw(op, payload)? {
            (Status::Ok, body) => Ok(body),
            (status, body) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(&body).into_owned(),
            }),
        }
    }

    fn call_idempotent(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        match self.call_raw_idempotent(op, payload)? {
            (Status::Ok, body) => Ok(body),
            (status, body) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(&body).into_owned(),
            }),
        }
    }

    /// One kNN query. `deadline` of `None` uses the server's default (and
    /// keeps the query eligible for coalescing).
    pub fn query(
        &mut self,
        vector: &[f32],
        k: usize,
        window: TimeWindow,
        deadline: Option<Duration>,
    ) -> Result<QueryReply, ClientError> {
        let deadline_ms =
            deadline.map_or(0, |d| d.as_millis().clamp(1, u128::from(u32::MAX)) as u32);
        let payload = wire::PayloadWriter::new()
            .u32(k as u32)
            .i64(window.start)
            .i64(window.end)
            .u32(deadline_ms)
            .u32(vector.len() as u32)
            .f32s(vector)
            .build();
        let (status, body) = match self.call_raw_idempotent(Op::Query, &payload)? {
            // A timed-out query still carries its (partial) encoded results.
            reply @ ((Status::Ok, _) | (Status::Timeout, _)) => reply,
            (status, body) => {
                return Err(ClientError::Server {
                    status,
                    message: String::from_utf8_lossy(&body).into_owned(),
                })
            }
        };
        let (flags, results) = wire::decode_results(&body).map_err(ClientError::Protocol)?;
        Ok(QueryReply {
            results,
            coalesced: flags & wire::FLAG_COALESCED != 0,
            timed_out: flags & wire::FLAG_TIMED_OUT != 0 || status == Status::Timeout,
        })
    }

    /// One insert; returns the assigned row id.
    pub fn insert(&mut self, vector: &[f32], timestamp: i64) -> Result<u32, ClientError> {
        let payload =
            wire::PayloadWriter::new().i64(timestamp).u32(vector.len() as u32).f32s(vector).build();
        let body = self.call(Op::Insert, &payload)?;
        let bytes: [u8; 4] = body
            .as_slice()
            .try_into()
            .map_err(|_| ClientError::Protocol("insert reply is not a u32".into()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// The `/stats` document as a JSON string.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let body = self.call_idempotent(Op::Stats, &[])?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("stats not utf-8".into()))
    }

    /// The tenant's health document as a JSON string.
    pub fn health(&mut self) -> Result<String, ClientError> {
        let body = self.call_idempotent(Op::Health, &[])?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("health not utf-8".into()))
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call_idempotent(Op::Ping, &[]).map(|_| ())
    }

    /// Promotes the authenticated replica tenant: verify its WAL tail and
    /// open it for writes (manual failover). Deliberately **not** retried:
    /// promotion is a state change the operator should observe directly.
    pub fn promote(&mut self) -> Result<(), ClientError> {
        self.call(Op::Promote, &[]).map(|_| ())
    }
}

/// Sends one HTTP/1.1 request over a fresh connection and returns
/// `(status, body)`. `headers` are extra `Name: value` lines (e.g. the
/// `Authorization` and `X-Tenant` pair).
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> Result<(u16, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: mbi\r\nConnection: close\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(request.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("eof inside response headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| ClientError::Protocol("body not utf-8".into()))?;
    Ok((status, body))
}
