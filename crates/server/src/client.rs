//! Clients for both protocols: [`BinaryClient`] for the framed binary
//! protocol, and a minimal [`http_request`] helper the tests and bench use
//! against the JSON endpoints.

use crate::wire::{self, Op, Status};
use mbi_core::{TimeWindow, TknnResult};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors a client call can return.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a non-OK status.
    Server {
        /// The response status.
        status: Status,
        /// The server's message (or decoded payload summary).
        message: String,
    },
    /// The response payload did not decode.
    Protocol(String),
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server error {status:?}: {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

/// A query answer from the binary protocol.
pub struct QueryReply {
    /// The top-k results.
    pub results: Vec<TknnResult>,
    /// The query rode a coalesced batch.
    pub coalesced: bool,
    /// The deadline expired; results are partial.
    pub timed_out: bool,
}

/// One authenticated binary-protocol connection.
pub struct BinaryClient {
    stream: TcpStream,
}

impl BinaryClient {
    /// Connects, sends the protocol magic, and authenticates as
    /// `(tenant, token)`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        token: &str,
    ) -> Result<BinaryClient, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(&wire::MAGIC)?;
        let mut client = BinaryClient { stream };
        let payload = wire::PayloadWriter::new().str16(tenant).str16(token).build();
        client.call(Op::Auth, &payload)?;
        Ok(client)
    }

    /// Sets a receive timeout on the connection.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// One raw round-trip; returns the status and untouched payload bytes.
    fn call_raw(&mut self, op: Op, payload: &[u8]) -> Result<(Status, Vec<u8>), ClientError> {
        wire::write_frame(&mut self.stream, op as u8, payload)?;
        let Some((tag, body)) = wire::read_frame(&mut self.stream)? else {
            return Err(ClientError::Protocol("server closed mid-call".into()));
        };
        match Status::from_u8(tag) {
            Some(status) => Ok((status, body)),
            None => Err(ClientError::Protocol(format!("unknown status byte {tag}"))),
        }
    }

    fn call(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        match self.call_raw(op, payload)? {
            (Status::Ok, body) => Ok(body),
            (status, body) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(&body).into_owned(),
            }),
        }
    }

    /// One kNN query. `deadline` of `None` uses the server's default (and
    /// keeps the query eligible for coalescing).
    pub fn query(
        &mut self,
        vector: &[f32],
        k: usize,
        window: TimeWindow,
        deadline: Option<Duration>,
    ) -> Result<QueryReply, ClientError> {
        let deadline_ms =
            deadline.map_or(0, |d| d.as_millis().clamp(1, u128::from(u32::MAX)) as u32);
        let payload = wire::PayloadWriter::new()
            .u32(k as u32)
            .i64(window.start)
            .i64(window.end)
            .u32(deadline_ms)
            .u32(vector.len() as u32)
            .f32s(vector)
            .build();
        let (status, body) = match self.call_raw(Op::Query, &payload)? {
            // A timed-out query still carries its (partial) encoded results.
            reply @ ((Status::Ok, _) | (Status::Timeout, _)) => reply,
            (status, body) => {
                return Err(ClientError::Server {
                    status,
                    message: String::from_utf8_lossy(&body).into_owned(),
                })
            }
        };
        let (flags, results) = wire::decode_results(&body).map_err(ClientError::Protocol)?;
        Ok(QueryReply {
            results,
            coalesced: flags & wire::FLAG_COALESCED != 0,
            timed_out: flags & wire::FLAG_TIMED_OUT != 0 || status == Status::Timeout,
        })
    }

    /// One insert; returns the assigned row id.
    pub fn insert(&mut self, vector: &[f32], timestamp: i64) -> Result<u32, ClientError> {
        let payload =
            wire::PayloadWriter::new().i64(timestamp).u32(vector.len() as u32).f32s(vector).build();
        let body = self.call(Op::Insert, &payload)?;
        let bytes: [u8; 4] = body
            .as_slice()
            .try_into()
            .map_err(|_| ClientError::Protocol("insert reply is not a u32".into()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// The `/stats` document as a JSON string.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let body = self.call(Op::Stats, &[])?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("stats not utf-8".into()))
    }

    /// The tenant's health document as a JSON string.
    pub fn health(&mut self) -> Result<String, ClientError> {
        let body = self.call(Op::Health, &[])?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("health not utf-8".into()))
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Op::Ping, &[]).map(|_| ())
    }
}

/// Sends one HTTP/1.1 request over a fresh connection and returns
/// `(status, body)`. `headers` are extra `Name: value` lines (e.g. the
/// `Authorization` and `X-Tenant` pair).
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> Result<(u16, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: mbi\r\nConnection: close\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(request.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("eof inside response headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| ClientError::Protocol("body not utf-8".into()))?;
    Ok((status, body))
}
