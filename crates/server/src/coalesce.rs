//! Cross-request batch coalescing.
//!
//! Concurrent single queries against one tenant merge into one
//! [`StreamingMbi::query_batch`](mbi_core::StreamingMbi::query_batch) call:
//! the first arrival becomes the *leader*, waits up to the coalesce window
//! (or until the batch cap fills) for companions, executes the whole batch,
//! and demultiplexes results to each waiter. Followers just park on their
//! slot. No dedicated collector thread exists — the leader is a request
//! thread, so draining in-flight requests at shutdown drains the coalescer
//! for free.
//!
//! Correctness: `query_batch` answers every query against one consistent
//! engine state with per-query results bit-identical to individual
//! `query_with_params` calls against that state, so coalescing changes
//! *when* a query runs, never *what* it returns. The property test in
//! `tests/coalesce_properties.rs` pins this end to end.

use mbi_core::{MbiError, TimeWindow, TknnResult};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one coalesced submission returned: the query's own results plus the
/// size of the batch it rode in (1 = ran alone).
pub struct CoalesceOutcome {
    /// This query's results, bit-identical to an individual engine call.
    pub results: Vec<TknnResult>,
    /// Number of queries in the executed batch.
    pub batch_size: usize,
}

/// One query's rendezvous point: the follower parks here until the leader
/// deposits its result (and the batch size it was answered in).
struct Slot {
    outcome: Mutex<Option<Result<CoalesceOutcome, String>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot { outcome: Mutex::new(None), ready: Condvar::new() }
    }

    fn fill(&self, value: Result<CoalesceOutcome, String>) {
        *self.outcome.lock() = Some(value);
        self.ready.notify_all();
    }

    fn take(&self) -> Result<CoalesceOutcome, String> {
        let mut guard = self.outcome.lock();
        while guard.is_none() {
            self.ready.wait(&mut guard);
        }
        guard.take().expect("checked Some")
    }
}

struct PendingQuery {
    query: Vec<f32>,
    k: usize,
    window: TimeWindow,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct CollectorState {
    pending: Vec<PendingQuery>,
    /// Whether a leader is currently collecting; the next arrival after the
    /// leader drains becomes the new leader.
    leading: bool,
}

/// The per-tenant coalescing collector. See the module docs.
pub struct Coalescer {
    window: Duration,
    max_batch: usize,
    state: Mutex<CollectorState>,
    /// Signals the collecting leader that the batch cap filled early.
    filled: Condvar,
}

impl Coalescer {
    /// A collector with the given window and batch cap. A zero window
    /// disables coalescing: every submission executes immediately, alone.
    pub fn new(window: Duration, max_batch: usize) -> Self {
        Coalescer {
            window,
            max_batch: max_batch.max(2),
            state: Mutex::new(CollectorState::default()),
            filled: Condvar::new(),
        }
    }

    /// Whether coalescing is enabled.
    pub fn enabled(&self) -> bool {
        !self.window.is_zero()
    }

    /// Submits one query. Blocks the calling thread until its results are
    /// available — at most one coalesce window plus the batch execution.
    ///
    /// `exec` runs the merged batch (only the leader's `exec` is invoked;
    /// followers' closures are dropped unused). An engine error or panic in
    /// the batch execution is broadcast to every waiter as an `Err` — no
    /// waiter can hang on a dead leader.
    pub fn submit<F>(
        &self,
        query: Vec<f32>,
        k: usize,
        window: TimeWindow,
        exec: F,
    ) -> Result<CoalesceOutcome, String>
    where
        F: FnOnce(&[(Vec<f32>, usize, TimeWindow)]) -> Result<Vec<Vec<TknnResult>>, MbiError>,
    {
        if !self.enabled() {
            let batch = [(query, k, window)];
            let mut results = exec(&batch).map_err(|e| e.to_string())?;
            return Ok(CoalesceOutcome {
                results: results.pop().expect("one result per query"),
                batch_size: 1,
            });
        }
        let slot = Arc::new(Slot::new());
        let lead = {
            let mut st = self.state.lock();
            st.pending.push(PendingQuery { query, k, window, slot: Arc::clone(&slot) });
            if st.leading {
                if st.pending.len() >= self.max_batch {
                    self.filled.notify_all();
                }
                false
            } else {
                st.leading = true;
                true
            }
        };
        if lead {
            self.lead(exec);
        }
        slot.take()
    }

    /// Collect for up to one window (or until the cap fills), then execute
    /// and distribute.
    fn lead<F>(&self, exec: F)
    where
        F: FnOnce(&[(Vec<f32>, usize, TimeWindow)]) -> Result<Vec<Vec<TknnResult>>, MbiError>,
    {
        let deadline = Instant::now() + self.window;
        let batch = {
            let mut st = self.state.lock();
            while st.pending.len() < self.max_batch {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                if self.filled.wait_for(&mut st, left).timed_out() {
                    break;
                }
            }
            st.leading = false;
            std::mem::take(&mut st.pending)
        };
        let queries: Vec<(Vec<f32>, usize, TimeWindow)> =
            batch.iter().map(|p| (p.query.clone(), p.k, p.window)).collect();
        let n = batch.len();
        let outcome = catch_unwind(AssertUnwindSafe(|| exec(&queries)));
        match outcome {
            Ok(Ok(results)) => {
                debug_assert_eq!(results.len(), n);
                for (p, r) in batch.iter().zip(results) {
                    p.slot.fill(Ok(CoalesceOutcome { results: r, batch_size: n }));
                }
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                for p in &batch {
                    p.slot.fill(Err(msg.clone()));
                }
            }
            Err(_) => {
                for p in &batch {
                    p.slot.fill(Err("batch execution panicked".into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_batch(
        queries: &[(Vec<f32>, usize, TimeWindow)],
    ) -> Result<Vec<Vec<TknnResult>>, MbiError> {
        // A deterministic fake engine: one result per query, id = k.
        Ok(queries
            .iter()
            .map(|(_, k, _)| vec![TknnResult { id: *k as u32, timestamp: 0, dist: 0.0 }])
            .collect())
    }

    #[test]
    fn zero_window_bypasses_collection() {
        let c = Coalescer::new(Duration::ZERO, 8);
        assert!(!c.enabled());
        let out = c.submit(vec![1.0], 7, TimeWindow::all(), run_batch).unwrap();
        assert_eq!(out.batch_size, 1);
        assert_eq!(out.results[0].id, 7);
    }

    #[test]
    fn concurrent_submissions_share_a_batch() {
        // A generous window so even a heavily loaded CI machine gets all
        // four threads into one batch; the cap fills long before it lapses.
        let c = Arc::new(Coalescer::new(Duration::from_millis(500), 4));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let outs: Vec<CoalesceOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    let c = Arc::clone(&c);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        c.submit(vec![i as f32], i as usize, TimeWindow::all(), run_batch).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All four arrived within the window, so the batch cap (4) fills
        // and everyone reports the same batch.
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.results[0].id, i as u32);
            assert!(out.batch_size >= 2, "query {i} ran in a batch of {}", out.batch_size);
        }
        assert!(outs.iter().any(|o| o.batch_size == 4), "cap never filled");
    }

    #[test]
    fn execution_error_reaches_every_waiter() {
        let c = Arc::new(Coalescer::new(Duration::from_millis(20), 2));
        let errs: Vec<Result<CoalesceOutcome, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2u32)
                .map(|i| {
                    let c = Arc::clone(&c);
                    scope.spawn(move || {
                        c.submit(vec![i as f32], 1, TimeWindow::all(), |_| {
                            Err(MbiError::Io(std::io::Error::other("boom")))
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in errs {
            assert!(e.is_err());
        }
    }

    #[test]
    fn leader_panic_does_not_hang_followers() {
        let c = Arc::new(Coalescer::new(Duration::from_millis(20), 2));
        let outs: Vec<Result<CoalesceOutcome, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2u32)
                .map(|i| {
                    let c = Arc::clone(&c);
                    scope.spawn(move || {
                        c.submit(vec![i as f32], 1, TimeWindow::all(), |_| panic!("die"))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in outs {
            assert_eq!(out.err().as_deref(), Some("batch execution panicked"));
        }
    }
}
