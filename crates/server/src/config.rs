//! Server and tenant configuration.

use mbi_core::{EngineConfig, MbiConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Where a replica tenant replicates from: the leader's address and the
/// credentials of the leader-side tenant it subscribes to.
#[derive(Clone, Debug)]
pub struct ReplicaSource {
    /// Leader address, e.g. `"127.0.0.1:7171"`.
    pub addr: String,
    /// Leader-side tenant name to subscribe to.
    pub tenant: String,
    /// That tenant's bearer token.
    pub token: String,
}

/// One tenant: a name, its bearer token, and where its data lives.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Namespace name (appears in `/stats`, never in auth decisions alone).
    pub name: String,
    /// Bearer token. A request must present the `(name, token)` pair; one
    /// tenant's token never grants access to another's namespace.
    pub token: String,
    /// Durable directory for a streaming tenant
    /// ([`StreamingMbi::open`](mbi_core::StreamingMbi::open)): WAL +
    /// checkpoints live here and the tenant recovers from it on restart.
    /// `None` (and no `cold_path`) = in-memory streaming tenant. Required
    /// for a replica tenant (the follower's WAL lives here).
    pub dir: Option<PathBuf>,
    /// Path to a v7 index file for a read-only cold tenant
    /// ([`ColdIndex`](mbi_core::ColdIndex)); inserts are rejected.
    pub cold_path: Option<PathBuf>,
    /// Present on a replica tenant: the leader to tail. The tenant serves
    /// read-only queries while replicating and rejects inserts until
    /// promoted.
    pub replica_of: Option<ReplicaSource>,
}

impl TenantConfig {
    /// An in-memory streaming tenant.
    pub fn memory(name: impl Into<String>, token: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            token: token.into(),
            dir: None,
            cold_path: None,
            replica_of: None,
        }
    }

    /// A durable streaming tenant rooted at `dir`.
    pub fn durable(
        name: impl Into<String>,
        token: impl Into<String>,
        dir: impl Into<PathBuf>,
    ) -> Self {
        TenantConfig {
            name: name.into(),
            token: token.into(),
            dir: Some(dir.into()),
            cold_path: None,
            replica_of: None,
        }
    }

    /// A read-only cold tenant served from a v7 index file.
    pub fn cold(
        name: impl Into<String>,
        token: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Self {
        TenantConfig {
            name: name.into(),
            token: token.into(),
            dir: None,
            cold_path: Some(path.into()),
            replica_of: None,
        }
    }

    /// A replica tenant: a durable follower rooted at `dir` tailing
    /// `source`, serving read-only queries until promoted.
    pub fn replica(
        name: impl Into<String>,
        token: impl Into<String>,
        dir: impl Into<PathBuf>,
        source: ReplicaSource,
    ) -> Self {
        TenantConfig {
            name: name.into(),
            token: token.into(),
            dir: Some(dir.into()),
            cold_path: None,
            replica_of: Some(source),
        }
    }
}

/// Everything [`Server::start`](crate::Server::start) needs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7171"`. Port `0` picks a free port
    /// (tests read it back from
    /// [`ServerHandle::addr`](crate::ServerHandle::addr)).
    pub addr: String,
    /// Index configuration shared by every streaming tenant (cold tenants
    /// carry their own persisted config).
    pub index: MbiConfig,
    /// Engine tunables. `builder_threads` is the *total* background-build
    /// pool: it is divided evenly across streaming tenants (at least one
    /// each), which approximates a shared pool without cross-engine work
    /// stealing — an idle tenant's builders sleep on their queue and cost
    /// nothing.
    pub engine: EngineConfig,
    /// Accepted-connection cap; beyond it new connections get an immediate
    /// overload response and are closed.
    pub max_connections: usize,
    /// In-flight request cap (the admission gate): a query/insert arriving
    /// while this many are executing is shed with `503`/`Overloaded`
    /// rather than queued.
    pub max_inflight: usize,
    /// Default per-request deadline applied when a request does not carry
    /// its own; `None` = unbounded.
    pub default_deadline: Option<Duration>,
    /// Coalescing window: a query waits up to this long for companions to
    /// merge into one batch call. `Duration::ZERO` disables coalescing.
    pub coalesce_window: Duration,
    /// Upper bound on one coalesced batch; a full batch executes before
    /// the window elapses.
    pub coalesce_max_batch: usize,
    /// Idle-connection deadline (the slow-loris guard): a connection that
    /// sends no complete request for this long is dropped and counted in
    /// `idle_dropped`. `None` = no deadline. Replication subscriptions are
    /// exempt (they are idle by design between pushes).
    pub idle_timeout: Option<Duration>,
    /// Hard cap on one binary frame (and indirectly the request head cap
    /// guards HTTP); larger frames get a clean error and the connection
    /// closes. Clamped to the protocol-wide
    /// [`MAX_FRAME`](crate::wire::MAX_FRAME).
    pub max_frame_bytes: usize,
    /// `/healthz` reports `"degraded"` when any replica tenant lags its
    /// leader by more than this many rows.
    pub replica_lag_warn_rows: u64,
    /// The tenants to serve. Duplicate names or tokens are a start-time
    /// error.
    pub tenants: Vec<TenantConfig>,
}

impl ServerConfig {
    /// A config with production-ish defaults: 256 connections, 64 in-flight
    /// requests, a 2 s default deadline, coalescing off.
    pub fn new(addr: impl Into<String>, index: MbiConfig) -> Self {
        ServerConfig {
            addr: addr.into(),
            index,
            engine: EngineConfig::default(),
            max_connections: 256,
            max_inflight: 64,
            default_deadline: Some(Duration::from_secs(2)),
            coalesce_window: Duration::ZERO,
            coalesce_max_batch: 32,
            idle_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: crate::wire::MAX_FRAME,
            replica_lag_warn_rows: 10_000,
            tenants: Vec::new(),
        }
    }

    /// Adds a tenant.
    pub fn with_tenant(mut self, tenant: TenantConfig) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the engine tunables (see [`ServerConfig::engine`]).
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the coalescing window and batch cap.
    pub fn with_coalescing(mut self, window: Duration, max_batch: usize) -> Self {
        self.coalesce_window = window;
        self.coalesce_max_batch = max_batch.max(2);
        self
    }

    /// Sets the in-flight request cap.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Sets the default per-request deadline (`None` = unbounded).
    pub fn with_default_deadline(mut self, d: Option<Duration>) -> Self {
        self.default_deadline = d;
        self
    }

    /// Sets the connection cap.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    /// Sets the idle-connection deadline (`None` = never drop idlers).
    pub fn with_idle_timeout(mut self, d: Option<Duration>) -> Self {
        self.idle_timeout = d;
        self
    }

    /// Sets the per-frame size cap (clamped to at least 16 bytes and at
    /// most the protocol-wide maximum).
    pub fn with_max_frame_bytes(mut self, n: usize) -> Self {
        self.max_frame_bytes = n.clamp(16, crate::wire::MAX_FRAME);
        self
    }

    /// Sets the replica-lag threshold at which `/healthz` degrades.
    pub fn with_replica_lag_warn(mut self, rows: u64) -> Self {
        self.replica_lag_warn_rows = rows;
        self
    }
}
