//! Server and tenant configuration.

use mbi_core::{EngineConfig, MbiConfig};
use std::path::PathBuf;
use std::time::Duration;

/// One tenant: a name, its bearer token, and where its data lives.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Namespace name (appears in `/stats`, never in auth decisions alone).
    pub name: String,
    /// Bearer token. A request must present the `(name, token)` pair; one
    /// tenant's token never grants access to another's namespace.
    pub token: String,
    /// Durable directory for a streaming tenant
    /// ([`StreamingMbi::open`](mbi_core::StreamingMbi::open)): WAL +
    /// checkpoints live here and the tenant recovers from it on restart.
    /// `None` (and no `cold_path`) = in-memory streaming tenant.
    pub dir: Option<PathBuf>,
    /// Path to a v7 index file for a read-only cold tenant
    /// ([`ColdIndex`](mbi_core::ColdIndex)); inserts are rejected.
    pub cold_path: Option<PathBuf>,
}

impl TenantConfig {
    /// An in-memory streaming tenant.
    pub fn memory(name: impl Into<String>, token: impl Into<String>) -> Self {
        TenantConfig { name: name.into(), token: token.into(), dir: None, cold_path: None }
    }

    /// A durable streaming tenant rooted at `dir`.
    pub fn durable(
        name: impl Into<String>,
        token: impl Into<String>,
        dir: impl Into<PathBuf>,
    ) -> Self {
        TenantConfig {
            name: name.into(),
            token: token.into(),
            dir: Some(dir.into()),
            cold_path: None,
        }
    }

    /// A read-only cold tenant served from a v7 index file.
    pub fn cold(
        name: impl Into<String>,
        token: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Self {
        TenantConfig {
            name: name.into(),
            token: token.into(),
            dir: None,
            cold_path: Some(path.into()),
        }
    }
}

/// Everything [`Server::start`](crate::Server::start) needs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7171"`. Port `0` picks a free port
    /// (tests read it back from
    /// [`ServerHandle::addr`](crate::ServerHandle::addr)).
    pub addr: String,
    /// Index configuration shared by every streaming tenant (cold tenants
    /// carry their own persisted config).
    pub index: MbiConfig,
    /// Engine tunables. `builder_threads` is the *total* background-build
    /// pool: it is divided evenly across streaming tenants (at least one
    /// each), which approximates a shared pool without cross-engine work
    /// stealing — an idle tenant's builders sleep on their queue and cost
    /// nothing.
    pub engine: EngineConfig,
    /// Accepted-connection cap; beyond it new connections get an immediate
    /// overload response and are closed.
    pub max_connections: usize,
    /// In-flight request cap (the admission gate): a query/insert arriving
    /// while this many are executing is shed with `503`/`Overloaded`
    /// rather than queued.
    pub max_inflight: usize,
    /// Default per-request deadline applied when a request does not carry
    /// its own; `None` = unbounded.
    pub default_deadline: Option<Duration>,
    /// Coalescing window: a query waits up to this long for companions to
    /// merge into one batch call. `Duration::ZERO` disables coalescing.
    pub coalesce_window: Duration,
    /// Upper bound on one coalesced batch; a full batch executes before
    /// the window elapses.
    pub coalesce_max_batch: usize,
    /// The tenants to serve. Duplicate names or tokens are a start-time
    /// error.
    pub tenants: Vec<TenantConfig>,
}

impl ServerConfig {
    /// A config with production-ish defaults: 256 connections, 64 in-flight
    /// requests, a 2 s default deadline, coalescing off.
    pub fn new(addr: impl Into<String>, index: MbiConfig) -> Self {
        ServerConfig {
            addr: addr.into(),
            index,
            engine: EngineConfig::default(),
            max_connections: 256,
            max_inflight: 64,
            default_deadline: Some(Duration::from_secs(2)),
            coalesce_window: Duration::ZERO,
            coalesce_max_batch: 32,
            tenants: Vec::new(),
        }
    }

    /// Adds a tenant.
    pub fn with_tenant(mut self, tenant: TenantConfig) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the engine tunables (see [`ServerConfig::engine`]).
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the coalescing window and batch cap.
    pub fn with_coalescing(mut self, window: Duration, max_batch: usize) -> Self {
        self.coalesce_window = window;
        self.coalesce_max_batch = max_batch.max(2);
        self
    }

    /// Sets the in-flight request cap.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Sets the default per-request deadline (`None` = unbounded).
    pub fn with_default_deadline(mut self, d: Option<Duration>) -> Self {
        self.default_deadline = d;
        self
    }

    /// Sets the connection cap.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }
}
