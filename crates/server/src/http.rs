//! Minimal HTTP/1.1 request parsing and response writing — just enough for
//! `curl` and the JSON endpoints; not a general web server.
//!
//! Supported: request line + headers + `Content-Length` bodies, keep-alive,
//! `Authorization: Bearer` extraction, and an `X-Tenant` namespace header.
//! Not supported (responds `400`): chunked transfer encoding, multi-line
//! headers, upgrades.

use std::io::{BufRead, BufReader, Read, Write};

/// Cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Bearer token from `Authorization`, if present.
    pub bearer: Option<String>,
    /// `X-Tenant` namespace header, if present.
    pub tenant: Option<String>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before a request line arrived — the
    /// normal end of a keep-alive session, not an error to report.
    Closed,
    /// An I/O error (including read timeouts used for shutdown polling).
    Io(std::io::Error),
    /// The bytes were not the HTTP we speak; the message goes in a `400`.
    Malformed(String),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one request from `reader`.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Request, ParseError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ParseError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("bad request line {line:?}")));
    }
    let mut bearer = None;
    let mut tenant = None;
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(ParseError::Malformed("eof inside headers".into()));
        }
        head_bytes += h.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("request head too large".into()));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header {h:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "authorization" => {
                bearer = value
                    .strip_prefix("Bearer ")
                    .or_else(|| value.strip_prefix("bearer "))
                    .map(str::to_string);
            }
            "x-tenant" => tenant = Some(value.to_string()),
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ParseError::Malformed(format!("bad content-length {value:?}")))?;
            }
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::Malformed(format!("body of {content_length} bytes exceeds cap")));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| ParseError::Malformed("body is not valid utf-8".into()))?;
    let path = target.split('?').next().unwrap_or(&target).to_string();
    Ok(Request { method, path, bearer, tenant, keep_alive, body })
}

/// Writes one JSON response.
pub fn write_response<W: Write>(
    out: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        out,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    out.flush()
}

/// A JSON error body `{"error": "..."}`.
pub fn error_body(message: &str) -> String {
    let value = serde::Value::Map(vec![("error".into(), serde::Value::Str(message.into()))]);
    struct W(serde::Value);
    impl serde::Serialize for W {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&W(value)).expect("serialiser is total")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_post_with_body_and_auth() {
        let req = parse(
            "POST /query?x=1 HTTP/1.1\r\nHost: h\r\nAuthorization: Bearer tok-a\r\nX-Tenant: alpha\r\nContent-Length: 7\r\n\r\n{\"k\":3}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.bearer.as_deref(), Some("tok-a"));
        assert_eq!(req.tenant.as_deref(), Some("alpha"));
        assert_eq!(req.body, "{\"k\":3}");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse("NOT-HTTP\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse(""), Err(ParseError::Closed)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_is_well_formed() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
        assert_eq!(error_body("no"), "{\"error\":\"no\"}");
    }
}
