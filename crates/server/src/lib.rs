//! `mbi-server` — a multi-tenant network query service for the MBI engine.
//!
//! Exposes [`StreamingMbi`](mbi_core::StreamingMbi) (and read-only
//! [`ColdIndex`](mbi_core::ColdIndex) tenants) over TCP with two protocols
//! on one port:
//!
//! * **HTTP/1.1 + JSON** — `POST /query`, `POST /insert`, `GET /stats`,
//!   `GET /healthz`; bearer-token auth; debuggable with `curl`.
//! * **Binary** — a compact length-prefixed framing opened by the 4-byte
//!   magic `MBI1` (see [`wire`]); the throughput path.
//!
//! Both are hand-rolled on `std::net` + per-connection threads: the build
//! environment is offline, so tokio/axum/hyper are unavailable and the
//! workspace's vendored-stand-in discipline applies (no async runtime is
//! worth stubbing — blocking threads serve the tested load fine).
//!
//! The server owns five concerns the engine itself does not:
//!
//! 1. **Tenancy** ([`tenant`]) — one engine per named tenant, bearer-token
//!    auth, builder threads and RAM budget divided across tenants.
//! 2. **Admission control** ([`server`]) — a connection cap, a bounded
//!    in-flight request gate that sheds load with `503`/`Overloaded`
//!    instead of queueing unboundedly, and per-request deadlines that cut
//!    off stragglers with `408`/`Timeout` via the engine's cooperative
//!    deadline check.
//! 3. **Batch coalescing** ([`coalesce`]) — concurrent single queries
//!    within a small time window merge into one
//!    [`StreamingMbi::query_batch`](mbi_core::StreamingMbi::query_batch)
//!    call and demultiplex, bit-identical to serial execution.
//! 4. **Replication** ([`replicate`]) — WAL-shipped read replicas over the
//!    binary protocol: a leader streams sealed segments plus the live tail
//!    to followers that serve read-only queries while they tail, verify
//!    every segment handoff by CRC (divergence is a named error, never
//!    silent drift), survive link faults with jittered backoff, and can be
//!    promoted to writable primaries on failover.
//! 5. **Observability** ([`metrics`]) — per-tenant p50/p99/max latency,
//!    QPS, queue depth, coalesce ratio, replication lag, and the engine's
//!    own stats/health/tier counters as JSON.

// deny (not forbid): the signal module needs one audited `extern "C"` FFI
// declaration for SIGINT/SIGTERM, mirroring the mapped-I/O exception in
// `mbi-ann`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coalesce;
pub mod config;
pub mod http;
pub mod metrics;
pub mod replicate;
pub mod server;
pub mod signal;
pub mod tenant;
pub mod wire;

pub use client::{BinaryClient, ClientError, RetryPolicy};
pub use coalesce::Coalescer;
pub use config::{ReplicaSource, ServerConfig, TenantConfig};
pub use metrics::{LatencyHistogram, ServerMetrics, TenantMetrics};
pub use replicate::ReplicaState;
pub use server::{Server, ServerHandle};
pub use tenant::{FollowerInfo, Tenant, TenantEngine, TenantRegistry};
