//! Lock-free serving metrics: a bounded-memory latency histogram plus
//! per-tenant and server-wide counters.
//!
//! Request threads record with plain atomic adds — no lock, no allocation —
//! and `/stats` reads a consistent-enough snapshot with relaxed loads.
//! Unlike [`mbi_eval::LatencyRecorder`] (which stores every observation for
//! exact offline percentiles), the histogram here must survive an unbounded
//! request stream, so it buckets instead: 16 sub-buckets per power of two
//! keeps every reported quantile within ~6% of exact.

use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Sub-buckets per octave; 16 → worst-case quantile error 1/16 ≈ 6%.
const SUBS: u64 = 16;
/// log2(SUBS).
const SUB_BITS: u32 = 4;
/// Total buckets: values < 16 µs are exact, then 16 sub-buckets for each
/// octave up to 2^63 µs.
const BUCKETS: usize = (SUBS + (64 - SUB_BITS as u64) * SUBS) as usize;

/// A fixed-size exponential-bucket latency histogram in microseconds.
/// Record and read are both wait-free.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us < SUBS {
            return us as usize;
        }
        let oct = 63 - us.leading_zeros(); // ≥ SUB_BITS
        let sub = (us >> (oct - SUB_BITS)) & (SUBS - 1);
        ((oct - SUB_BITS) as u64 * SUBS + SUBS + sub) as usize
    }

    /// Lower bound of bucket `b` in microseconds (the value quantiles
    /// report — a one-sided error, so reported quantiles never exceed the
    /// true value by more than one sub-bucket width).
    fn bucket_floor(b: usize) -> u64 {
        let b = b as u64;
        if b < SUBS {
            return b;
        }
        let oct = (b - SUBS) / SUBS + SUB_BITS as u64;
        let sub = b & (SUBS - 1);
        (SUBS + sub) << (oct - SUB_BITS as u64)
    }

    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one observation already in microseconds.
    pub fn record_micros(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q ∈ [0, 1]`) in microseconds; `0` when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Nearest-rank on the bucket cumulative counts.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(b);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// A frozen summary of the current counters.
    pub fn summary(&self) -> LatencySnapshot {
        let count = self.count();
        LatencySnapshot {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
            },
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`LatencyHistogram`] summary.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LatencySnapshot {
    /// Observations.
    pub count: u64,
    /// Mean in microseconds.
    pub mean_us: f64,
    /// Approximate median in microseconds.
    pub p50_us: u64,
    /// Approximate 99th percentile in microseconds.
    pub p99_us: u64,
    /// Exact maximum in microseconds.
    pub max_us: u64,
}

/// Per-tenant serving counters.
#[derive(Default)]
pub struct TenantMetrics {
    /// Query latency distribution (admission to response serialisation).
    pub query_latency: LatencyHistogram,
    /// Queries answered (success or partial).
    pub queries: AtomicU64,
    /// Inserts acked.
    pub inserts: AtomicU64,
    /// Requests rejected by the admission gate.
    pub shed: AtomicU64,
    /// Queries cut off by a deadline.
    pub timeouts: AtomicU64,
    /// Requests rejected for a bad or cross-tenant token.
    pub unauthorized: AtomicU64,
    /// Queries answered through a coalesced batch of ≥ 2.
    pub coalesced: AtomicU64,
    /// Coalesced batch executions (of any size).
    pub batches: AtomicU64,
}

impl TenantMetrics {
    /// Renders the counters plus derived rates as a JSON value. `uptime`
    /// scales QPS.
    pub fn to_value(&self, uptime: Duration) -> Value {
        let queries = self.queries.load(Ordering::Relaxed);
        let coalesced = self.coalesced.load(Ordering::Relaxed);
        let secs = uptime.as_secs_f64().max(1e-9);
        let lat = self.query_latency.summary();
        Value::Map(vec![
            ("queries".into(), Value::UInt(queries)),
            ("inserts".into(), Value::UInt(self.inserts.load(Ordering::Relaxed))),
            ("shed".into(), Value::UInt(self.shed.load(Ordering::Relaxed))),
            ("timeouts".into(), Value::UInt(self.timeouts.load(Ordering::Relaxed))),
            ("unauthorized".into(), Value::UInt(self.unauthorized.load(Ordering::Relaxed))),
            ("coalesced".into(), Value::UInt(coalesced)),
            ("batches".into(), Value::UInt(self.batches.load(Ordering::Relaxed))),
            (
                "coalesce_ratio".into(),
                Value::Float(if queries == 0 { 0.0 } else { coalesced as f64 / queries as f64 }),
            ),
            ("qps".into(), Value::Float(queries as f64 / secs)),
            ("latency".into(), lat.to_value()),
        ])
    }
}

/// Server-wide gauges and counters.
pub struct ServerMetrics {
    /// Server start time (uptime / QPS base).
    pub started: Instant,
    /// Open connections right now.
    pub connections: AtomicUsize,
    /// Requests executing right now (the admission gate's gauge).
    pub inflight: AtomicUsize,
    /// Connections refused at the connection cap.
    pub connections_refused: AtomicU64,
    /// Requests shed at the in-flight cap (all tenants).
    pub shed: AtomicU64,
    /// Requests that failed to parse at all.
    pub bad_requests: AtomicU64,
    /// Connections dropped by the idle deadline (slow-loris guard).
    pub idle_dropped: AtomicU64,
    /// Frames / request heads rejected for exceeding the size cap.
    pub oversized: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            started: Instant::now(),
            connections: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            connections_refused: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            idle_dropped: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
        }
    }
}

impl ServerMetrics {
    /// Renders the server-wide section of `/stats`.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("uptime_secs".into(), Value::Float(self.started.elapsed().as_secs_f64())),
            ("connections".into(), Value::UInt(self.connections.load(Ordering::Relaxed) as u64)),
            ("inflight".into(), Value::UInt(self.inflight.load(Ordering::Relaxed) as u64)),
            (
                "connections_refused".into(),
                Value::UInt(self.connections_refused.load(Ordering::Relaxed)),
            ),
            ("shed".into(), Value::UInt(self.shed.load(Ordering::Relaxed))),
            ("bad_requests".into(), Value::UInt(self.bad_requests.load(Ordering::Relaxed))),
            ("idle_dropped".into(), Value::UInt(self.idle_dropped.load(Ordering::Relaxed))),
            ("oversized".into(), Value::UInt(self.oversized.load(Ordering::Relaxed))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut prev = 0usize;
        for us in [0u64, 1, 5, 15, 16, 17, 31, 32, 100, 999, 1000, 65535, 1 << 20, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(us);
            assert!(b >= prev, "bucket_of not monotone at {us}");
            prev = b;
            let floor = LatencyHistogram::bucket_floor(b);
            assert!(floor <= us, "floor {floor} exceeds value {us}");
            // The floor maps back to the same bucket.
            assert_eq!(LatencyHistogram::bucket_of(floor), b, "floor of bucket {b} not in it");
        }
    }

    #[test]
    fn quantiles_track_exact_within_a_sub_bucket() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_micros(us);
        }
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        assert!((450..=500).contains(&p50), "p50 = {p50}");
        assert!((920..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(h.summary().max_us, 1000);
        assert_eq!(h.count(), 1000);
        assert!((h.summary().mean_us - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        let s = h.summary();
        assert_eq!((s.count, s.p50_us, s.max_us), (0, 0, 0));
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn tenant_metrics_render_ratio() {
        let m = TenantMetrics::default();
        m.queries.store(10, Ordering::Relaxed);
        m.coalesced.store(4, Ordering::Relaxed);
        let v = m.to_value(Duration::from_secs(2));
        assert_eq!(v.get("coalesce_ratio").unwrap().as_f64(), Some(0.4));
        assert_eq!(v.get("qps").unwrap().as_f64(), Some(5.0));
    }
}
