//! The network half of replication: the leader's push loop behind
//! `REPL_SUBSCRIBE` and the follower's tailing thread.
//!
//! The durable substrate lives in [`mbi_core::replicate`] ([`WalFeed`] on
//! the leader, [`Replica`] on the follower); this module only moves its
//! events over the binary protocol. One subscribed connection carries
//! leader→follower push frames ([`REPL_RECORD`](crate::wire::REPL_RECORD),
//! [`REPL_SEAL`](crate::wire::REPL_SEAL),
//! [`REPL_HEARTBEAT`](crate::wire::REPL_HEARTBEAT)) and follower→leader
//! [`REPL_ACK`](crate::wire::REPL_ACK) frames on the same socket. Acks move
//! the leader's WAL retention hold forward, so segments a live follower
//! still needs outlast `checkpoint`'s pruning; a follower lagging past the
//! configured cap is evicted from the hold table instead of wedging prune,
//! after which its cursor eventually points at a pruned segment and the
//! link errors terminally ("re-seed").
//!
//! The follower retries its link forever with bounded-exponential jittered
//! backoff (reusing the client's [`RetryPolicy`]) — a leader restart is a
//! transient; only divergence, eviction, and local promotion are terminal.

use crate::client::RetryPolicy;
use crate::config::ReplicaSource;
use crate::server::Shared;
use crate::tenant::{Tenant, TenantEngine};
use crate::wire::{self, Op, Status};
use mbi_core::{fail, MbiError, ReplEvent, Replica, StreamingMbi, WalFeed};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long the leader's push loop sleeps when the feed is caught up, and
/// the granularity at which both sides poll their stop flags.
const LINK_POLL: Duration = Duration::from_millis(20);
/// Records per feed batch on the leader.
const FEED_BATCH: usize = 256;
/// The follower acks at least every this many applied records (and after
/// every seal), bounding how far the leader's retention hold trails.
const ACK_EVERY: u64 = 32;
/// The follower checkpoints after every this many seals, bounding replay
/// work after a follower crash.
const CHECKPOINT_EVERY_SEALS: u64 = 8;

/// Live link state of one replica tenant, shared between its tailing
/// thread and the stats/health endpoints.
#[derive(Debug, Default)]
pub struct ReplicaState {
    /// Highest leader row count observed over the link (lag numerator).
    pub leader_rows: AtomicU64,
    /// Whether the subscription is currently established.
    pub connected: AtomicBool,
    /// Set once the tenant is promoted; the tailing thread exits.
    pub promoted: AtomicBool,
    /// Times the link was re-established after a failure.
    pub reconnects: AtomicU64,
    /// The most recent link error, for `/stats`.
    pub last_error: Mutex<Option<String>>,
}

impl ReplicaState {
    /// Fresh state: disconnected, no lag observed.
    pub fn new() -> Self {
        Self::default()
    }

    fn note_error(&self, message: &str) {
        if let Ok(mut slot) = self.last_error.lock() {
            *slot = Some(message.to_string());
        }
    }
}

// ---------------------------------------------------------------------------
// Leader side
// ---------------------------------------------------------------------------

/// Serves one `REPL_SUBSCRIBE` request: flips the connection into a push
/// stream and owns it until disconnect, eviction, or shutdown. The caller
/// (the binary serving loop) must not touch the connection afterwards.
pub(crate) fn serve_repl_subscribe(
    stream: &TcpStream,
    payload: &[u8],
    tenant: &Arc<Tenant>,
    shared: &Shared,
) {
    let mut out = stream;
    let mut r = wire::PayloadReader::new(payload);
    let parsed = (|| {
        let id = r.str16()?;
        let start = r.u64()?;
        r.finish()?;
        Ok::<_, String>((id, start))
    })();
    let (follower_id, start_row) = match parsed {
        Ok(p) => p,
        Err(m) => {
            let _ = wire::write_frame(&mut out, Status::BadRequest as u8, m.as_bytes());
            return;
        }
    };
    let TenantEngine::Streaming(engine) = &tenant.engine else {
        let _ = wire::write_frame(
            &mut out,
            Status::BadRequest as u8,
            b"only a streaming tenant can lead replication",
        );
        return;
    };
    let mut feed = match WalFeed::for_engine(engine, start_row) {
        Ok(f) => f,
        Err(e) => {
            let _ = wire::write_frame(&mut out, Status::BadRequest as u8, e.to_string().as_bytes());
            return;
        }
    };
    // Register the retention hold *before* replying: between the reply and
    // the first batch a checkpoint must not prune the cursor's segment.
    engine.set_replica_hold(&follower_id, start_row);
    set_follower(tenant, &follower_id, start_row, true);
    let hello = wire::PayloadWriter::new()
        .u32(engine.config().dim as u32)
        .u32(engine.config().leaf_size as u32)
        .u64(engine.len() as u64)
        .build();
    if wire::write_frame(&mut out, Status::Ok as u8, &hello).is_err() {
        set_follower(tenant, &follower_id, start_row, false);
        return;
    }
    // Ack reader: a blocking loop on a cloned handle, moving the retention
    // hold forward as the follower reports durability.
    let ack_stop = Arc::new(AtomicBool::new(false));
    let ack_thread = stream.try_clone().ok().and_then(|clone| {
        let tenant = Arc::clone(tenant);
        let id = follower_id.clone();
        let stop = Arc::clone(&ack_stop);
        std::thread::Builder::new()
            .name("mbi-repl-ack".into())
            .spawn(move || ack_loop(clone, &tenant, &id, &stop))
            .ok()
    });
    push_loop(&mut out, &mut feed, engine, shared);
    // Sever the socket so the ack reader wakes, then mark the follower
    // disconnected — but keep its retention hold: only the lag cap (or an
    // explicit release) drops it, so a bounded outage never loses segments.
    ack_stop.store(true, Ordering::Relaxed);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    if let Some(t) = ack_thread {
        let _ = t.join();
    }
    if let Ok(mut followers) = tenant.followers.lock() {
        if let Some(info) = followers.get_mut(&follower_id) {
            info.connected = false;
        }
    }
}

/// The leader's push loop: stream records and seals, heartbeat when caught
/// up, surface feed errors as a final `REPL_ERR` frame.
fn push_loop(out: &mut &TcpStream, feed: &mut WalFeed, engine: &StreamingMbi, shared: &Shared) {
    while !shared.stop.load(Ordering::Relaxed) {
        let events = match feed.next_batch(FEED_BATCH) {
            Ok(events) => events,
            Err(e) => {
                // Pruned-cursor ("re-seed") and corruption errors are
                // terminal for this follower; tell it why before closing.
                let _ = wire::write_frame(out, wire::REPL_ERR, e.to_string().as_bytes());
                return;
            }
        };
        if events.is_empty() {
            let hb = wire::PayloadWriter::new().u64(engine.len() as u64).build();
            if wire::write_frame(out, wire::REPL_HEARTBEAT, &hb).is_err() {
                return;
            }
            std::thread::sleep(LINK_POLL);
            continue;
        }
        for event in &events {
            let sent = match event {
                ReplEvent::Record { row, timestamp, vector } => {
                    let payload = wire::PayloadWriter::new()
                        .u64(*row)
                        .i64(*timestamp)
                        .u32(vector.len() as u32)
                        .f32s(vector)
                        .build();
                    send_push(out, wire::REPL_RECORD, &payload, "repl::send_record")
                }
                ReplEvent::Seal { segment, crc } => {
                    let payload = wire::PayloadWriter::new().u64(*segment).u32(*crc).build();
                    send_push(out, wire::REPL_SEAL, &payload, "repl::send_seal")
                }
            };
            if !sent {
                return;
            }
        }
    }
}

/// Writes one push frame, honouring the link-level failpoints: `ShortWrite`
/// sends a torn prefix of the frame and severs the socket (the follower
/// must survive a frame cut mid-record), `IoError` severs it cleanly
/// between frames, `Panic` kills the leader thread mid-push.
fn send_push(out: &mut &TcpStream, tag: u8, payload: &[u8], site: &str) -> bool {
    match fail::trigger(site) {
        Some(fail::FailAction::ShortWrite) => {
            let mut bytes = ((payload.len() + 1) as u32).to_le_bytes().to_vec();
            bytes.push(tag);
            bytes.extend_from_slice(&payload[..payload.len() / 2]);
            let _ = out.write_all(&bytes);
            let _ = out.flush();
            let _ = out.shutdown(std::net::Shutdown::Both);
            return false;
        }
        Some(fail::FailAction::IoError) => {
            let _ = out.shutdown(std::net::Shutdown::Both);
            return false;
        }
        Some(fail::FailAction::Panic) => panic!("injected leader crash mid-push"),
        None => {}
    }
    wire::write_frame(out, tag, payload).is_ok()
}

/// Reads `REPL_ACK` frames off the subscribed connection until it closes,
/// advancing the leader's retention hold and the follower's stats entry.
fn ack_loop(stream: TcpStream, tenant: &Tenant, follower_id: &str, stop: &AtomicBool) {
    let mut reader = &stream;
    loop {
        let frame = match read_frame_poll(&mut reader, stop, None) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let (tag, payload) = frame;
        if tag != wire::REPL_ACK || payload.len() != 8 {
            continue;
        }
        let next_row = u64::from_le_bytes(payload.as_slice().try_into().expect("8 bytes"));
        if let TenantEngine::Streaming(engine) = &tenant.engine {
            engine.set_replica_hold(follower_id, next_row);
        }
        if let Ok(mut followers) = tenant.followers.lock() {
            if let Some(info) = followers.get_mut(follower_id) {
                info.acked_row = info.acked_row.max(next_row);
            }
        }
    }
}

fn set_follower(tenant: &Tenant, id: &str, acked_row: u64, connected: bool) {
    if let Ok(mut followers) = tenant.followers.lock() {
        let info = followers
            .entry(id.to_string())
            .or_insert(crate::tenant::FollowerInfo { acked_row, connected });
        info.connected = connected;
        info.acked_row = info.acked_row.max(acked_row);
    }
}

// ---------------------------------------------------------------------------
// Follower side
// ---------------------------------------------------------------------------

/// How one link attempt ended.
enum LinkEnd {
    /// Shutdown or promotion — stop tailing.
    Stopped,
    /// Unrecoverable (divergence, eviction, config mismatch) — stop tailing
    /// and leave the reason in `last_error`.
    Terminal(String),
    /// Transient (connect refused, leader restart, torn frame) — back off
    /// and reconnect from the current cursor.
    Transient(String),
}

/// The tailing thread of one replica tenant: connect, subscribe from the
/// local row count, apply pushed events, ack durability — forever, with
/// jittered backoff across link failures, until shutdown, promotion, or a
/// terminal replication error.
pub(crate) fn run_follower(tenant: Arc<Tenant>, shared: Arc<Shared>) {
    let TenantEngine::Replica { replica, state, source } = &tenant.engine else {
        return;
    };
    let retry = RetryPolicy::default();
    let mut rng = crate::client::jitter_seed();
    let mut attempt = 0usize;
    let mut connected_once = false;
    while !shared.stop.load(Ordering::Relaxed) && !replica.is_promoted() {
        let end = follow_once(replica, state, source, &tenant.name, &shared);
        state.connected.store(false, Ordering::Relaxed);
        match end {
            LinkEnd::Stopped => break,
            LinkEnd::Terminal(m) => {
                state.note_error(&m);
                break;
            }
            LinkEnd::Transient(m) => {
                state.note_error(&m);
                // A leader hello sets `leader_rows`, so this distinguishes
                // "the link dropped" (counted) from "never got through yet".
                connected_once = connected_once || state.leader_rows.load(Ordering::Relaxed) > 0;
                if connected_once {
                    state.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                // Bounded-exponential jittered backoff, sliced so shutdown
                // is never stuck behind a sleep.
                let mut wait = retry.backoff(attempt, &mut rng);
                attempt = (attempt + 1).min(16);
                while wait > Duration::ZERO && !shared.stop.load(Ordering::Relaxed) {
                    let slice = wait.min(LINK_POLL);
                    std::thread::sleep(slice);
                    wait -= slice;
                }
            }
        }
    }
    state.connected.store(false, Ordering::Relaxed);
}

/// One link attempt: returns how it ended. On success this blocks for the
/// life of the subscription.
fn follow_once(
    replica: &Arc<Replica>,
    state: &Arc<ReplicaState>,
    source: &ReplicaSource,
    follower_id: &str,
    shared: &Shared,
) -> LinkEnd {
    let transient = |m: String| LinkEnd::Transient(m);
    let mut stream = match TcpStream::connect(&source.addr) {
        Ok(s) => s,
        Err(e) => return transient(format!("connect {}: {e}", source.addr)),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(LINK_POLL));
    if let Err(e) = stream.write_all(&wire::MAGIC) {
        return transient(format!("handshake: {e}"));
    }
    let auth = wire::PayloadWriter::new().str16(&source.tenant).str16(&source.token).build();
    if let Err(e) = wire::write_frame(&mut &stream, Op::Auth as u8, &auth) {
        return transient(format!("auth send: {e}"));
    }
    match read_reply(&stream, shared, replica) {
        Ok(Some((tag, body))) if tag == Status::Ok as u8 => drop(body),
        Ok(Some((_, body))) => {
            // Auth rejections are usually deterministic, but during a
            // leader restart the tenant may simply not be up yet — keep
            // retrying rather than orphan the follower.
            return transient(format!("auth rejected: {}", String::from_utf8_lossy(&body)));
        }
        Ok(None) => return LinkEnd::Stopped,
        Err(m) => return transient(m),
    }
    let subscribe = wire::PayloadWriter::new().str16(follower_id).u64(replica.next_row()).build();
    if let Err(e) = wire::write_frame(&mut &stream, Op::ReplSubscribe as u8, &subscribe) {
        return transient(format!("subscribe send: {e}"));
    }
    let hello = match read_reply(&stream, shared, replica) {
        Ok(Some((tag, body))) if tag == Status::Ok as u8 => body,
        Ok(Some((_, body))) => {
            return transient(format!("subscribe rejected: {}", String::from_utf8_lossy(&body)))
        }
        Ok(None) => return LinkEnd::Stopped,
        Err(m) => return transient(m),
    };
    let mut r = wire::PayloadReader::new(&hello);
    let parsed = (|| {
        let dim = r.u32()? as usize;
        let leaf = r.u32()? as usize;
        let rows = r.u64()?;
        r.finish()?;
        Ok::<_, String>((dim, leaf, rows))
    })();
    let (dim, leaf, leader_rows) = match parsed {
        Ok(p) => p,
        Err(m) => return transient(format!("bad subscribe reply: {m}")),
    };
    let config = replica.engine().config();
    if dim != config.dim || leaf != config.leaf_size {
        return LinkEnd::Terminal(format!(
            "leader config mismatch: leader dim {dim} leaf {leaf}, follower dim {} leaf {}",
            config.dim, config.leaf_size
        ));
    }
    state.leader_rows.fetch_max(leader_rows, Ordering::Relaxed);
    state.connected.store(true, Ordering::Relaxed);
    // Established. Apply pushes until the link breaks or we must stop.
    let mut reader = &stream;
    let mut unacked = 0u64;
    let mut seals_since_checkpoint = 0u64;
    loop {
        if replica.is_promoted() {
            return LinkEnd::Stopped;
        }
        let (tag, payload) = match read_frame_poll(&mut reader, &shared.stop, Some(replica)) {
            Ok(Some(f)) => f,
            Ok(None) => {
                if shared.stop.load(Ordering::Relaxed) || replica.is_promoted() {
                    return LinkEnd::Stopped;
                }
                return transient("leader closed the link".into());
            }
            Err(e) => return transient(format!("link read: {e}")),
        };
        match tag {
            wire::REPL_RECORD => {
                let mut r = wire::PayloadReader::new(&payload);
                let parsed = (|| {
                    let row = r.u64()?;
                    let timestamp = r.i64()?;
                    let n = r.u32()? as usize;
                    let vector = r.f32s(n)?;
                    r.finish()?;
                    Ok::<_, String>((row, timestamp, vector))
                })();
                let (row, timestamp, vector) = match parsed {
                    Ok(p) => p,
                    Err(m) => return transient(format!("bad record frame: {m}")),
                };
                match replica.apply(&ReplEvent::Record { row, timestamp, vector }) {
                    Ok(()) => {}
                    Err(e @ MbiError::ReplicaDiverged { .. }) => {
                        return LinkEnd::Terminal(e.to_string())
                    }
                    Err(e) => return transient(e.to_string()),
                }
                unacked += 1;
                if unacked >= ACK_EVERY {
                    unacked = 0;
                    if send_ack(&stream, replica).is_err() {
                        return transient("ack send failed".into());
                    }
                }
            }
            wire::REPL_SEAL => {
                let mut r = wire::PayloadReader::new(&payload);
                let parsed = (|| {
                    let segment = r.u64()?;
                    let crc = r.u32()?;
                    r.finish()?;
                    Ok::<_, String>((segment, crc))
                })();
                let (segment, crc) = match parsed {
                    Ok(p) => p,
                    Err(m) => return transient(format!("bad seal frame: {m}")),
                };
                match replica.apply(&ReplEvent::Seal { segment, crc }) {
                    Ok(()) => {}
                    Err(e @ MbiError::ReplicaDiverged { .. }) => {
                        return LinkEnd::Terminal(e.to_string())
                    }
                    Err(e) => return transient(e.to_string()),
                }
                unacked = 0;
                if send_ack(&stream, replica).is_err() {
                    return transient("ack send failed".into());
                }
                seals_since_checkpoint += 1;
                if seals_since_checkpoint >= CHECKPOINT_EVERY_SEALS {
                    seals_since_checkpoint = 0;
                    if let Err(e) = replica.engine().checkpoint() {
                        // Checkpointing bounds replay, it does not gate
                        // correctness — log it and keep tailing.
                        state.note_error(&format!("follower checkpoint: {e}"));
                    }
                }
            }
            wire::REPL_HEARTBEAT if payload.len() == 8 => {
                let rows = u64::from_le_bytes(payload.as_slice().try_into().expect("8 bytes"));
                state.leader_rows.fetch_max(rows, Ordering::Relaxed);
            }
            wire::REPL_ERR => {
                let message = String::from_utf8_lossy(&payload).into_owned();
                if message.contains("diverged") || message.contains("re-seed") {
                    return LinkEnd::Terminal(message);
                }
                return transient(message);
            }
            _ => return transient(format!("unexpected push frame tag {tag:#04x}")),
        }
    }
}

/// Sends one durability ack carrying the follower's current row count.
fn send_ack(stream: &TcpStream, replica: &Replica) -> std::io::Result<()> {
    let payload = wire::PayloadWriter::new().u64(replica.next_row()).build();
    wire::write_frame(&mut &*stream, wire::REPL_ACK, &payload)
}

/// Reads one handshake reply, polling the stop flag; `Ok(None)` means we
/// should stop (shutdown/promotion) or the peer closed.
fn read_reply(
    stream: &TcpStream,
    shared: &Shared,
    replica: &Replica,
) -> Result<Option<(u8, Vec<u8>)>, String> {
    let mut reader = stream;
    read_frame_poll(&mut reader, &shared.stop, Some(replica)).map_err(|e| e.to_string())
}

/// [`wire::read_frame`] over a socket with a short read timeout: timeouts
/// poll `stop` (and promotion, when a replica is given) instead of tearing
/// the frame — partial reads keep their position and resume. `Ok(None)` on
/// clean close before a frame starts, or when told to stop.
fn read_frame_poll(
    reader: &mut impl Read,
    stop: &AtomicBool,
    replica: Option<&Replica>,
) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let should_stop = |started: bool| {
        !started && (stop.load(Ordering::Relaxed) || replica.is_some_and(|r| r.is_promoted()))
    };
    let mut len = [0u8; 4];
    if !read_exact_poll(reader, &mut len, &should_stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > wire::MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad push frame length {len}"),
        ));
    }
    let never = |_: bool| false;
    let mut tag = [0u8; 1];
    if !read_exact_poll(reader, &mut tag, &never)? {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "torn frame"));
    }
    let mut payload = vec![0u8; len - 1];
    if !read_exact_poll(reader, &mut payload, &never)? {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "torn frame"));
    }
    Ok(Some((tag[0], payload)))
}

/// `read_exact` that survives read timeouts without losing position.
/// `Ok(false)` when the peer closed (or `should_stop` said to) before the
/// first byte; a close mid-buffer is an `UnexpectedEof` error.
fn read_exact_poll(
    reader: &mut impl Read,
    buf: &mut [u8],
    should_stop: &dyn Fn(bool) -> bool,
) -> std::io::Result<bool> {
    let mut got = 0usize;
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if should_stop(got > 0) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_exact_poll_resumes_across_timeouts() {
        // A reader that yields WouldBlock between every byte must still
        // deliver the full buffer without losing position.
        struct Choppy<'a> {
            bytes: &'a [u8],
            pos: usize,
            ready: bool,
        }
        impl Read for Choppy<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.ready {
                    self.ready = true;
                    return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "later"));
                }
                self.ready = false;
                if self.pos == self.bytes.len() {
                    return Ok(0);
                }
                buf[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, wire::REPL_HEARTBEAT, &7u64.to_le_bytes()).unwrap();
        let mut chopped = Choppy { bytes: &frame, pos: 0, ready: false };
        let stop = AtomicBool::new(false);
        let (tag, payload) = read_frame_poll(&mut chopped, &stop, None).unwrap().unwrap();
        assert_eq!(tag, wire::REPL_HEARTBEAT);
        assert_eq!(payload, 7u64.to_le_bytes());
        // Clean EOF between frames is None, not an error.
        assert!(read_frame_poll(&mut chopped, &stop, None).unwrap().is_none());
    }

    #[test]
    fn stop_flag_only_applies_between_frames() {
        struct Never;
        impl Read for Never {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "idle"))
            }
        }
        let stop = AtomicBool::new(true);
        assert!(read_frame_poll(&mut Never, &stop, None).unwrap().is_none());
    }
}
