//! The serving loop: accept, sniff the protocol, admit, route, respond.
//!
//! One thread accepts; each connection gets its own thread (the offline
//! build environment has no async runtime, and per-connection threads serve
//! the tested load fine). A connection's first 4 bytes pick the protocol:
//! the magic [`MAGIC`](crate::wire::MAGIC) opens the binary framing,
//! anything else is parsed as HTTP/1.1.
//!
//! Admission control is two nested gates: a connection cap (refused
//! connections get an immediate overload response and close) and an
//! in-flight request cap (excess requests are shed with
//! `503`/`Overloaded` instead of queueing). Deadlines ride the engine's
//! cooperative check: an expired query comes back flagged partial and is
//! answered with `408`/`Timeout` — the connection and server keep serving.

use crate::coalesce::CoalesceOutcome;
use crate::config::ServerConfig;
use crate::http::{self, ParseError, Request};
use crate::metrics::ServerMetrics;
use crate::signal;
use crate::tenant::{Tenant, TenantError, TenantRegistry};
use crate::wire::{self, Op, Status};
use mbi_core::{MbiError, TimeWindow};
use serde::Value;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending. Short,
/// because this bounds the accept latency of every fresh connection (one
/// HTTP request from `curl` pays it once).
const ACCEPT_POLL: Duration = Duration::from_millis(1);
/// Per-connection read timeout used to poll the stop flag between requests.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// How long [`ServerHandle::shutdown`] waits for in-flight work to drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// The server. Construct with [`Server::start`]; it returns a
/// [`ServerHandle`] immediately and serves on background threads.
pub struct Server;

/// Everything shared across the accept loop and connection threads.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) registry: Arc<TenantRegistry>,
    pub(crate) metrics: ServerMetrics,
    pub(crate) stop: AtomicBool,
}

impl Server {
    /// Builds every tenant engine, binds `config.addr`, and starts serving.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, MbiError> {
        let registry = Arc::new(TenantRegistry::build(&config)?);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            registry: Arc::clone(&registry),
            metrics: ServerMetrics::default(),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("mbi-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(MbiError::Io)?;
        // Each replica tenant gets a tailing thread that keeps its
        // subscription to the leader alive until shutdown or promotion.
        let mut followers = Vec::new();
        for tenant in registry.all() {
            if matches!(tenant.engine, crate::tenant::TenantEngine::Replica { .. }) {
                let tenant = Arc::clone(tenant);
                let shared = Arc::clone(&shared);
                let thread = std::thread::Builder::new()
                    .name(format!("mbi-repl-{}", tenant.name))
                    .spawn(move || crate::replicate::run_follower(tenant, shared))
                    .map_err(MbiError::Io)?;
                followers.push(thread);
            }
        }
        Ok(ServerHandle { addr, shared, registry, accept: Some(accept), followers })
    }
}

/// Handle to a running server: its address, shutdown, and introspection.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    registry: Arc<TenantRegistry>,
    accept: Option<std::thread::JoinHandle<()>>,
    followers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (read this back when the config asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The tenant registry (tests and the CLI read metrics through it).
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// Blocks until a termination signal (or [`signal::request_shutdown`])
    /// arrives, then drains gracefully. The CLI's serving loop.
    pub fn wait_for_shutdown(mut self) {
        while !signal::shutdown_requested() && !self.shared.stop.load(Ordering::Relaxed) {
            std::thread::sleep(POLL_INTERVAL);
        }
        self.drain();
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests and open
    /// connections (bounded by an internal timeout), then checkpoint every
    /// durable tenant's WAL and drop the engines (which joins their
    /// builders).
    pub fn shutdown(mut self) {
        self.drain();
    }

    /// Simulated crash for the fault-injection suite: stop serving but
    /// *leak* the engines so no `Drop` runs — no WAL sync, no checkpoint,
    /// no builder join. Recovery must then reconstruct every acked insert
    /// from the log alone.
    pub fn abort(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        std::mem::forget(Arc::clone(&self.registry));
    }

    fn drain(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.followers.drain(..) {
            let _ = t.join();
        }
        let gone = Instant::now() + DRAIN_TIMEOUT;
        while self.shared.metrics.connections.load(Ordering::Relaxed) > 0 && Instant::now() < gone {
            std::thread::sleep(Duration::from_millis(5));
        }
        for tenant in self.registry.all() {
            match &tenant.engine {
                crate::tenant::TenantEngine::Streaming(e) if e.durable_dir().is_some() => {
                    if let Err(err) = e.checkpoint() {
                        eprintln!("checkpoint of tenant {:?} failed: {err}", tenant.name);
                    }
                }
                crate::tenant::TenantEngine::Replica { replica, .. } => {
                    if let Err(err) = replica.engine().checkpoint() {
                        eprintln!("checkpoint of replica {:?} failed: {err}", tenant.name);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.drain();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let open = shared.metrics.connections.fetch_add(1, Ordering::Relaxed) + 1;
                if open > shared.config.max_connections {
                    shared.metrics.connections.fetch_sub(1, Ordering::Relaxed);
                    shared.metrics.connections_refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                let conn_shared = Arc::clone(&shared);
                let spawned =
                    std::thread::Builder::new().name("mbi-conn".into()).spawn(move || {
                        serve_connection(stream, &conn_shared);
                        conn_shared.metrics.connections.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    shared.metrics.connections.fetch_sub(1, Ordering::Relaxed);
                    shared.metrics.connections_refused.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Best-effort overload response to a connection refused at the cap; we
/// cannot know its protocol yet, so answer in both.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut buf = Vec::new();
    let _ =
        http::write_response(&mut buf, 503, &http::error_body("connection limit reached"), false);
    let _ = stream.write_all(&buf);
}

/// A `Read` that replays the sniffed prefix before the live stream.
struct PrefixedStream<'a> {
    prefix: &'a [u8],
    pos: usize,
    stream: &'a TcpStream,
}

impl Read for PrefixedStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.prefix.len() {
            let n = (&self.prefix[self.pos..]).read(buf)?;
            self.pos += n;
            return Ok(n);
        }
        self.stream.read(buf)
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut sniff = [0u8; 4];
    let mut got = 0usize;
    // Collect the 4 sniff bytes, polling the stop flag on timeouts. The
    // idle deadline (the slow-loris guard) starts here: a connection that
    // cannot even produce 4 bytes in time is dropped.
    let idle_gone = shared.config.idle_timeout.map(|d| Instant::now() + d);
    while got < 4 {
        match (&stream).read(&mut sniff[got..]) {
            Ok(0) => return,
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if idle_gone.is_some_and(|gone| Instant::now() >= gone) {
                    shared.metrics.idle_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Err(_) => return,
        }
    }
    if sniff == wire::MAGIC {
        serve_binary(&stream, shared);
    } else {
        serve_http(&stream, &sniff, shared);
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Waits until the reader has buffered data, the peer closes (`Ok(false)`),
/// the server stops (`Ok(false)`), or the idle deadline passes without a
/// byte arriving (`Ok(false)`, counted in `idle_dropped`). The deadline is
/// re-armed per request — it bounds *idle* time, not connection lifetime.
fn wait_readable<R: Read>(reader: &mut BufReader<R>, shared: &Shared) -> std::io::Result<bool> {
    use std::io::BufRead;
    let idle_gone = shared.config.idle_timeout.map(|d| Instant::now() + d);
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(false),
            Ok(_) => return Ok(true),
            Err(e) if is_timeout(&e) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return Ok(false);
                }
                if idle_gone.is_some_and(|gone| Instant::now() >= gone) {
                    shared.metrics.idle_dropped.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// RAII decrement for the in-flight gauge.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The admission gate: `None` means shed.
fn admit(shared: &Shared) -> Option<InflightGuard<'_>> {
    let now = shared.metrics.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    if now > shared.config.max_inflight {
        shared.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
        shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    Some(InflightGuard(&shared.metrics.inflight))
}

/// What one executed query carries back to either protocol layer.
struct QueryDone {
    results: Vec<mbi_core::TknnResult>,
    timed_out: bool,
    coalesced: bool,
    batch_size: usize,
}

/// Routes one query through the coalescer (deadline-free) or the direct
/// deadline path, recording tenant metrics either way.
fn run_query(
    tenant: &Tenant,
    query: Vec<f32>,
    k: usize,
    window: TimeWindow,
    explicit_deadline: Option<Duration>,
    shared: &Shared,
) -> Result<QueryDone, String> {
    if query.len() != tenant.dim() {
        return Err(format!(
            "query dimension {} does not match index dimension {}",
            query.len(),
            tenant.dim()
        ));
    }
    let start = Instant::now();
    let done = if tenant.coalescer.enabled() && explicit_deadline.is_none() {
        // Deadline-free queries ride the coalescer; the window plus one
        // batch execution bounds their latency.
        let CoalesceOutcome { results, batch_size } =
            tenant
                .coalescer
                .submit(query, k, window, |batch| tenant.query_batch(batch, batch.len()))?;
        if batch_size > 1 {
            tenant.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        QueryDone { results, timed_out: false, coalesced: batch_size > 1, batch_size }
    } else {
        let deadline =
            explicit_deadline.or(shared.config.default_deadline).map(|d| Instant::now() + d);
        let out = tenant.query(&query, k, window, deadline).map_err(|e| e.to_string())?;
        if out.timed_out {
            tenant.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        QueryDone {
            results: out.results,
            timed_out: out.timed_out,
            coalesced: false,
            batch_size: 1,
        }
    };
    tenant.metrics.queries.fetch_add(1, Ordering::Relaxed);
    tenant.metrics.query_latency.record(start.elapsed());
    Ok(done)
}

// ---------------------------------------------------------------------------
// HTTP protocol
// ---------------------------------------------------------------------------

fn serve_http(stream: &TcpStream, sniffed: &[u8], shared: &Shared) {
    let mut reader = BufReader::new(PrefixedStream { prefix: sniffed, pos: 0, stream });
    let mut out = stream;
    loop {
        match wait_readable(&mut reader, shared) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let request = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::Closed) => return,
            Err(ParseError::Io(_)) => return,
            Err(ParseError::Malformed(m)) => {
                // An oversized request head is the HTTP face of the frame
                // cap: 431 and its own counter, not a generic 400.
                let status = if m == "request head too large" {
                    shared.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                    431
                } else {
                    shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                    400
                };
                let _ = http::write_response(&mut out, status, &http::error_body(&m), false);
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let (status, body) = handle_http_request(&request, shared);
        if http::write_response(&mut out, status, &body, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn handle_http_request(req: &Request, shared: &Shared) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/stats") => match authenticate_http(req, shared) {
            Ok(tenant) => (200, render(stats_value(tenant, shared))),
            Err(resp) => resp,
        },
        ("POST", "/query") => match authenticate_http(req, shared) {
            Ok(tenant) => http_query(req, tenant, shared),
            Err(resp) => resp,
        },
        ("POST", "/insert") => match authenticate_http(req, shared) {
            Ok(tenant) => http_insert(req, tenant, shared),
            Err(resp) => resp,
        },
        ("POST", "/promote") => match authenticate_http(req, shared) {
            Ok(tenant) => match tenant.promote() {
                Ok(()) => (200, render(Value::Map(vec![("promoted".into(), Value::Bool(true))]))),
                Err(e) => (400, http::error_body(&e.to_string())),
            },
            Err(resp) => resp,
        },
        ("GET" | "POST", _) => (404, http::error_body("no such endpoint")),
        _ => (405, http::error_body("method not allowed")),
    }
}

/// Resolves the request's credentials to a tenant. With an `X-Tenant`
/// header the `(name, token)` pair must match; without one the token alone
/// must uniquely identify its tenant.
fn authenticate_http<'a>(
    req: &Request,
    shared: &'a Shared,
) -> Result<&'a Arc<Tenant>, (u16, String)> {
    let Some(token) = req.bearer.as_deref() else {
        return Err((401, http::error_body("missing bearer token")));
    };
    let found = match req.tenant.as_deref() {
        Some(name) => shared.registry.authenticate(name, token),
        None => shared.registry.by_token(token),
    };
    found.ok_or_else(|| {
        // Attribute the rejection to the named tenant when one was claimed.
        if let Some(t) = req.tenant.as_deref().and_then(|n| shared.registry.by_name(n)) {
            t.metrics.unauthorized.fetch_add(1, Ordering::Relaxed);
        }
        (401, http::error_body("invalid credentials"))
    })
}

fn healthz(shared: &Shared) -> (u16, String) {
    let tenants: Vec<(String, Value)> =
        shared.registry.all().iter().map(|t| (t.name.clone(), t.health_value())).collect();
    let halted = shared.registry.any_halted();
    // A replica trailing its leader past the configured threshold degrades
    // the report (still 200 — the data it serves is stale, not wrong).
    let lagging = shared.registry.all().iter().any(|t| {
        t.replication_lag_rows().is_some_and(|lag| lag > shared.config.replica_lag_warn_rows)
    });
    let status = if halted {
        "halted"
    } else if lagging {
        "degraded"
    } else {
        "ok"
    };
    let body = Value::Map(vec![
        ("status".into(), Value::Str(status.into())),
        ("tenants".into(), Value::Map(tenants)),
    ]);
    (if halted { 503 } else { 200 }, render(body))
}

/// The `/stats` document: server-wide gauges plus the authenticated
/// tenant's own serving metrics and engine stats.
fn stats_value(tenant: &Arc<Tenant>, shared: &Shared) -> Value {
    let uptime = shared.metrics.started.elapsed();
    let mut doc = vec![
        ("server".into(), shared.metrics.to_value()),
        ("tenant".into(), Value::Str(tenant.name.clone())),
        ("serving".into(), tenant.metrics.to_value(uptime)),
        ("engine".into(), tenant.engine_stats_value()),
    ];
    if let Some(followers) = tenant.followers_value() {
        doc.push(("followers".into(), followers));
    }
    Value::Map(doc)
}

fn http_query(req: &Request, tenant: &Arc<Tenant>, shared: &Shared) -> (u16, String) {
    let Some(guard) = admit(shared) else {
        tenant.metrics.shed.fetch_add(1, Ordering::Relaxed);
        return (503, http::error_body("server overloaded"));
    };
    let _guard = guard;
    let parsed = match parse_query_body(&req.body) {
        Ok(p) => p,
        Err(m) => return (400, http::error_body(&m)),
    };
    let (query, k, window, deadline) = parsed;
    match run_query(tenant, query, k, window, deadline, shared) {
        Ok(done) => {
            let results: Vec<Value> = done
                .results
                .iter()
                .map(|r| {
                    Value::Map(vec![
                        ("id".into(), Value::UInt(u64::from(r.id))),
                        ("timestamp".into(), Value::Int(r.timestamp)),
                        ("dist".into(), Value::Float(f64::from(r.dist))),
                    ])
                })
                .collect();
            let body = Value::Map(vec![
                ("results".into(), Value::Seq(results)),
                ("timed_out".into(), Value::Bool(done.timed_out)),
                ("coalesced".into(), Value::Bool(done.coalesced)),
                ("batch_size".into(), Value::UInt(done.batch_size as u64)),
            ]);
            (if done.timed_out { 408 } else { 200 }, render(body))
        }
        Err(m) => (400, http::error_body(&m)),
    }
}

type ParsedQuery = (Vec<f32>, usize, TimeWindow, Option<Duration>);

fn parse_query_body(body: &str) -> Result<ParsedQuery, String> {
    let v = serde_json::from_str(body).map_err(|e| e.to_string())?;
    let query: Vec<f32> = v
        .get("vector")
        .and_then(Value::as_seq)
        .ok_or("missing \"vector\" array")?
        .iter()
        .map(|x| x.as_f64().map(|f| f as f32).ok_or("non-numeric vector element"))
        .collect::<Result<_, _>>()?;
    let k = v.get("k").and_then(Value::as_u64).ok_or("missing \"k\"")? as usize;
    if k == 0 {
        return Err("k must be positive".into());
    }
    let from = v.get("from").and_then(Value::as_i64).unwrap_or(i64::MIN);
    let to = v.get("to").and_then(Value::as_i64).unwrap_or(i64::MAX);
    if from > to {
        return Err(format!("window start {from} is after end {to}"));
    }
    let deadline = match v.get("deadline_ms") {
        None => None,
        Some(d) => Some(Duration::from_millis(
            d.as_u64().ok_or("\"deadline_ms\" must be a non-negative integer")?,
        )),
    };
    Ok((query, k, TimeWindow::new(from, to), deadline))
}

fn http_insert(req: &Request, tenant: &Arc<Tenant>, shared: &Shared) -> (u16, String) {
    let Some(guard) = admit(shared) else {
        tenant.metrics.shed.fetch_add(1, Ordering::Relaxed);
        return (503, http::error_body("server overloaded"));
    };
    let _guard = guard;
    let v = match serde_json::from_str(&req.body) {
        Ok(v) => v,
        Err(e) => return (400, http::error_body(&e.to_string())),
    };
    let Some(vector) = v.get("vector").and_then(Value::as_seq) else {
        return (400, http::error_body("missing \"vector\" array"));
    };
    let vector: Vec<f32> = match vector
        .iter()
        .map(|x| x.as_f64().map(|f| f as f32).ok_or("non-numeric vector element"))
        .collect::<Result<_, _>>()
    {
        Ok(vs) => vs,
        Err(m) => return (400, http::error_body(m)),
    };
    let Some(t) = v.get("timestamp").and_then(Value::as_i64) else {
        return (400, http::error_body("missing \"timestamp\""));
    };
    match tenant.insert(&vector, t) {
        Ok(id) => {
            tenant.metrics.inserts.fetch_add(1, Ordering::Relaxed);
            (200, render(Value::Map(vec![("id".into(), Value::UInt(u64::from(id)))])))
        }
        Err(TenantError::ReadOnly) => (403, http::error_body("tenant is read-only")),
        Err(TenantError::Engine(e)) => (400, http::error_body(&e.to_string())),
    }
}

fn render(value: Value) -> String {
    struct W(Value);
    impl serde::Serialize for W {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&W(value)).expect("serialiser is total")
}

// ---------------------------------------------------------------------------
// Binary protocol
// ---------------------------------------------------------------------------

fn serve_binary(stream: &TcpStream, shared: &Shared) {
    let mut reader = BufReader::new(stream);
    let mut out = stream;
    // The connection's authenticated tenant; every op except AUTH and PING
    // requires it.
    let mut tenant: Option<Arc<Tenant>> = None;
    loop {
        match wait_readable(&mut reader, shared) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let (tag, payload) =
            match wire::read_frame_limit(&mut reader, shared.config.max_frame_bytes) {
                Ok(Some(f)) => f,
                Ok(None) => return,
                Err(e) => {
                    if e.to_string().contains("exceeds cap") {
                        shared.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                        let _ = wire::write_frame(
                            &mut out,
                            Status::BadRequest as u8,
                            b"frame too large",
                        );
                    } else {
                        shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                        let _ = wire::write_frame(&mut out, Status::BadRequest as u8, b"bad frame");
                    }
                    return;
                }
            };
        let Some(op) = Op::from_u8(tag) else {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = wire::write_frame(&mut out, Status::BadRequest as u8, b"unknown op");
            return;
        };
        if op == Op::ReplSubscribe {
            // The subscription takes the whole connection over: the push
            // loop owns it until disconnect or shutdown.
            let Some(tenant) = tenant.as_ref() else {
                let _ =
                    wire::write_frame(&mut out, Status::Unauthorized as u8, b"authenticate first");
                return;
            };
            crate::replicate::serve_repl_subscribe(stream, &payload, tenant, shared);
            return;
        }
        let (status, response) = handle_binary_op(op, &payload, &mut tenant, shared);
        if wire::write_frame(&mut out, status as u8, &response).is_err() {
            return;
        }
    }
}

fn handle_binary_op(
    op: Op,
    payload: &[u8],
    tenant: &mut Option<Arc<Tenant>>,
    shared: &Shared,
) -> (Status, Vec<u8>) {
    match op {
        Op::Ping => (Status::Ok, Vec::new()),
        Op::Auth => {
            let mut r = wire::PayloadReader::new(payload);
            let parsed = (|| {
                let name = r.str16()?;
                let token = r.str16()?;
                r.finish()?;
                Ok::<_, String>((name, token))
            })();
            match parsed {
                Ok((name, token)) => match shared.registry.authenticate(&name, &token) {
                    Some(t) => {
                        *tenant = Some(Arc::clone(t));
                        (Status::Ok, Vec::new())
                    }
                    None => {
                        if let Some(t) = shared.registry.by_name(&name) {
                            t.metrics.unauthorized.fetch_add(1, Ordering::Relaxed);
                        }
                        (Status::Unauthorized, b"invalid credentials".to_vec())
                    }
                },
                Err(m) => (Status::BadRequest, m.into_bytes()),
            }
        }
        Op::Query => {
            let Some(tenant) = tenant.as_ref() else {
                return (Status::Unauthorized, b"authenticate first".to_vec());
            };
            let Some(guard) = admit(shared) else {
                tenant.metrics.shed.fetch_add(1, Ordering::Relaxed);
                return (Status::Overloaded, b"server overloaded".to_vec());
            };
            let _guard = guard;
            let mut r = wire::PayloadReader::new(payload);
            let parsed = (|| {
                let k = r.u32()? as usize;
                let from = r.i64()?;
                let to = r.i64()?;
                let deadline_ms = r.u32()?;
                let dim = r.u32()? as usize;
                let query = r.f32s(dim)?;
                r.finish()?;
                if k == 0 {
                    return Err("k must be positive".into());
                }
                if from > to {
                    return Err(format!("window start {from} is after end {to}"));
                }
                Ok::<_, String>((k, TimeWindow::new(from, to), deadline_ms, query))
            })();
            let (k, window, deadline_ms, query) = match parsed {
                Ok(p) => p,
                Err(m) => return (Status::BadRequest, m.into_bytes()),
            };
            let deadline = (deadline_ms > 0).then(|| Duration::from_millis(u64::from(deadline_ms)));
            match run_query(tenant, query, k, window, deadline, shared) {
                Ok(done) => {
                    let mut flags = 0u8;
                    if done.coalesced {
                        flags |= wire::FLAG_COALESCED;
                    }
                    if done.timed_out {
                        flags |= wire::FLAG_TIMED_OUT;
                    }
                    let body = wire::encode_results(&done.results, flags);
                    (if done.timed_out { Status::Timeout } else { Status::Ok }, body)
                }
                Err(m) => (Status::BadRequest, m.into_bytes()),
            }
        }
        Op::Insert => {
            let Some(tenant) = tenant.as_ref() else {
                return (Status::Unauthorized, b"authenticate first".to_vec());
            };
            let Some(guard) = admit(shared) else {
                tenant.metrics.shed.fetch_add(1, Ordering::Relaxed);
                return (Status::Overloaded, b"server overloaded".to_vec());
            };
            let _guard = guard;
            let mut r = wire::PayloadReader::new(payload);
            let parsed = (|| {
                let t = r.i64()?;
                let dim = r.u32()? as usize;
                let vector = r.f32s(dim)?;
                r.finish()?;
                Ok::<_, String>((t, vector))
            })();
            let (t, vector) = match parsed {
                Ok(p) => p,
                Err(m) => return (Status::BadRequest, m.into_bytes()),
            };
            match tenant.insert(&vector, t) {
                Ok(id) => {
                    tenant.metrics.inserts.fetch_add(1, Ordering::Relaxed);
                    (Status::Ok, id.to_le_bytes().to_vec())
                }
                Err(TenantError::ReadOnly) => (Status::ReadOnly, b"tenant is read-only".to_vec()),
                Err(TenantError::Engine(e)) => (Status::Internal, e.to_string().into_bytes()),
            }
        }
        Op::Stats => {
            let Some(tenant) = tenant.as_ref() else {
                return (Status::Unauthorized, b"authenticate first".to_vec());
            };
            (Status::Ok, render(stats_value(tenant, shared)).into_bytes())
        }
        Op::Health => {
            let Some(tenant) = tenant.as_ref() else {
                return (Status::Unauthorized, b"authenticate first".to_vec());
            };
            (Status::Ok, render(tenant.health_value()).into_bytes())
        }
        // Handled at the connection level in `serve_binary`; reaching the
        // dispatcher means the interception was bypassed somehow.
        Op::ReplSubscribe => (Status::BadRequest, b"subscribe is connection-level".to_vec()),
        Op::Promote => {
            let Some(tenant) = tenant.as_ref() else {
                return (Status::Unauthorized, b"authenticate first".to_vec());
            };
            match tenant.promote() {
                Ok(()) => (Status::Ok, Vec::new()),
                Err(e) => (Status::BadRequest, e.to_string().into_bytes()),
            }
        }
    }
}
