//! SIGINT/SIGTERM → a process-wide shutdown flag.
//!
//! `mbi serve` blocks in `ServerHandle::wait_for_shutdown`, which polls the
//! flag this module latches from an async-signal context. The handler does
//! the only thing async-signal-safety allows — one relaxed atomic store —
//! and the serving thread notices within its accept-poll interval.
//!
//! The `extern "C"` declaration of `signal(2)` below is the crate's single
//! unsafe exception (the crate is `deny(unsafe_code)` with an audited allow
//! here, mirroring the raw-syscall exception in `mbi-ann`'s mapped I/O).

use std::sync::atomic::{AtomicBool, Ordering};

/// Latched by the handler on the first SIGINT/SIGTERM.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Sets the flag directly — lets tests and the CLI trigger the same path a
/// signal would.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clears the flag (tests only; a real process exits after shutdown).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX signal(2). We pass a plain extern "C" fn pointer as the
        // handler, cast through usize as the stable-Rust idiom for avoiding
        // a platform-specific sighandler_t alias.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe thing worth doing: latch the flag.
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the libc entry point with the documented
        // signature; `on_signal` is an extern "C" fn that only performs an
        // atomic store, which is async-signal-safe. Errors (SIG_ERR) are
        // ignored — worst case the process keeps the default handler and
        // dies without draining, which is the pre-existing behaviour.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent). On non-Unix targets
/// this is a no-op and only [`request_shutdown`] can trigger a drain.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_latches_and_resets() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }
}
