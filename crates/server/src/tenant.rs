//! Per-tenant namespaces: one engine per tenant, bearer-token auth, and the
//! division of shared resources (builder threads, RAM budget) across
//! tenants.

use crate::coalesce::Coalescer;
use crate::config::{ReplicaSource, ServerConfig, TenantConfig};
use crate::metrics::TenantMetrics;
use crate::replicate::ReplicaState;
use mbi_ann::SearchParams;
use mbi_core::{
    ColdIndex, EngineHealth, MbiError, QueryOutput, Replica, StreamingMbi, TimeWindow, TknnResult,
};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The engine behind one tenant.
pub enum TenantEngine {
    /// A live streaming engine (in-memory or durable).
    Streaming(StreamingMbi),
    /// A read-only disk-tiered index; inserts are rejected.
    Cold(ColdIndex),
    /// A replication follower: a durable engine fed from a leader, serving
    /// read-only queries until promoted.
    Replica {
        /// The follower applier around the durable engine.
        replica: Arc<Replica>,
        /// Live link state (lag, connectivity, promotion flag).
        state: Arc<ReplicaState>,
        /// The leader this tenant tails.
        source: ReplicaSource,
    },
}

/// What the leader knows about one subscribed follower (keyed by the
/// follower id it presented at `REPL_SUBSCRIBE`).
#[derive(Clone, Copy, Debug)]
pub struct FollowerInfo {
    /// Highest row the follower acked as durable.
    pub acked_row: u64,
    /// Whether its subscription connection is currently open.
    pub connected: bool,
}

/// One tenant: engine + token + serving metrics + its coalescer.
pub struct Tenant {
    /// Namespace name.
    pub name: String,
    token: String,
    /// The tenant's engine.
    pub engine: TenantEngine,
    /// Serving counters (latency, shed, timeouts, coalescing).
    pub metrics: TenantMetrics,
    /// The tenant's query coalescer (a no-op when the window is zero).
    pub coalescer: Coalescer,
    /// Leader-side registry of subscribed followers (empty unless this
    /// tenant has ever served a `REPL_SUBSCRIBE`).
    pub followers: Mutex<BTreeMap<String, FollowerInfo>>,
}

impl Tenant {
    /// Constant-length-agnostic token comparison. Tokens are short and this
    /// is not a remote-timing-hardened service, but avoiding the obvious
    /// early-exit compare costs nothing.
    pub fn token_matches(&self, presented: &str) -> bool {
        let a = self.token.as_bytes();
        let b = presented.as_bytes();
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
    }

    /// Default search parameters of this tenant's index config.
    pub fn search_params(&self) -> SearchParams {
        match &self.engine {
            TenantEngine::Streaming(e) => e.config().search,
            TenantEngine::Cold(c) => c.config().search,
            TenantEngine::Replica { replica, .. } => replica.engine().config().search,
        }
    }

    /// Vector dimensionality this tenant expects.
    pub fn dim(&self) -> usize {
        match &self.engine {
            TenantEngine::Streaming(e) => e.config().dim,
            TenantEngine::Cold(c) => c.config().dim,
            TenantEngine::Replica { replica, .. } => replica.engine().config().dim,
        }
    }

    /// One query with an optional cooperative deadline (never through the
    /// coalescer — the server routes deadline-free queries there itself).
    pub fn query(
        &self,
        query: &[f32],
        k: usize,
        window: TimeWindow,
        deadline: Option<Instant>,
    ) -> Result<QueryOutput, MbiError> {
        match &self.engine {
            TenantEngine::Streaming(e) => {
                Ok(e.query_with_deadline(query, k, window, &self.search_params(), deadline))
            }
            TenantEngine::Cold(c) => {
                c.query_with_deadline(query, k, window, &self.search_params(), deadline)
            }
            TenantEngine::Replica { replica, .. } => Ok(replica.engine().query_with_deadline(
                query,
                k,
                window,
                &self.search_params(),
                deadline,
            )),
        }
    }

    /// One batched call for the coalescer.
    pub fn query_batch(
        &self,
        queries: &[(Vec<f32>, usize, TimeWindow)],
        threads: usize,
    ) -> Result<Vec<Vec<TknnResult>>, MbiError> {
        let params = self.search_params();
        match &self.engine {
            TenantEngine::Streaming(e) => Ok(e.query_batch(queries, &params, threads)),
            TenantEngine::Cold(c) => queries
                .iter()
                .map(|(q, k, w)| Ok(c.query_with_params(q, *k, *w, &params)?.results))
                .collect(),
            TenantEngine::Replica { replica, .. } => {
                Ok(replica.engine().query_batch(queries, &params, threads))
            }
        }
    }

    /// One insert; read-only tenants reject it. A replica accepts inserts
    /// only once promoted.
    pub fn insert(&self, vector: &[f32], t: i64) -> Result<u32, TenantError> {
        match &self.engine {
            TenantEngine::Streaming(e) => Ok(e.insert(vector, t)?),
            TenantEngine::Cold(_) => Err(TenantError::ReadOnly),
            TenantEngine::Replica { replica, .. } => {
                if replica.is_promoted() {
                    Ok(replica.engine().insert(vector, t)?)
                } else {
                    Err(TenantError::ReadOnly)
                }
            }
        }
    }

    /// Promotes a replica tenant (manual failover): verifies its WAL tail,
    /// checkpoints, and opens it for writes. Errors on non-replica tenants.
    pub fn promote(&self) -> Result<(), TenantError> {
        match &self.engine {
            TenantEngine::Replica { replica, state, .. } => {
                replica.promote()?;
                state.promoted.store(true, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(TenantError::Engine(MbiError::Io(std::io::Error::other(
                "tenant is not a replica",
            )))),
        }
    }

    /// Rows this replica lags its leader by (`None` for non-replicas).
    /// Lag is against the highest leader row count observed over the link,
    /// so a disconnected follower reports its last-known lag, not zero.
    pub fn replication_lag_rows(&self) -> Option<u64> {
        match &self.engine {
            TenantEngine::Replica { replica, state, .. } => {
                Some(state.leader_rows.load(Ordering::Relaxed).saturating_sub(replica.next_row()))
            }
            _ => None,
        }
    }

    /// Rows currently committed.
    pub fn len(&self) -> usize {
        match &self.engine {
            TenantEngine::Streaming(e) => e.len(),
            TenantEngine::Cold(c) => c.len(),
            TenantEngine::Replica { replica, .. } => replica.engine().len(),
        }
    }

    /// Whether the tenant holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Engine health (cold tenants are immutable, hence always healthy).
    pub fn health(&self) -> EngineHealth {
        match &self.engine {
            TenantEngine::Streaming(e) => e.health(),
            TenantEngine::Cold(_) => EngineHealth::Healthy,
            TenantEngine::Replica { replica, .. } => replica.engine().health(),
        }
    }

    /// The engine's failure log (empty for cold tenants).
    pub fn failure_log(&self) -> Vec<String> {
        match &self.engine {
            TenantEngine::Streaming(e) => e.failure_log(),
            TenantEngine::Cold(_) => Vec::new(),
            TenantEngine::Replica { replica, .. } => replica.engine().failure_log(),
        }
    }

    /// Engine-level stats as JSON: the scalar `EngineStats` counters for a
    /// streaming tenant, `TierStats` for a cold one. (The per-sample nano
    /// series stay in-process — they are unbounded and belong to the bench
    /// harness, not a stats endpoint.)
    pub fn engine_stats_value(&self) -> Value {
        match &self.engine {
            TenantEngine::Streaming(e) => {
                let s = e.stats();
                Value::Map(vec![
                    ("kind".into(), Value::Str("streaming".into())),
                    ("rows".into(), Value::UInt(e.len() as u64)),
                    ("seals".into(), Value::UInt(s.seals as u64)),
                    ("published_leaves".into(), Value::UInt(s.published_leaves as u64)),
                    ("queued_builds".into(), Value::UInt(s.queued_builds as u64)),
                    ("published_blocks".into(), Value::UInt(s.published_blocks as u64)),
                    ("published_height".into(), Value::UInt(u64::from(s.published_height))),
                    ("inline_builds".into(), Value::UInt(s.inline_builds)),
                    ("spawn_failures".into(), Value::UInt(s.spawn_failures)),
                    ("build_panics".into(), Value::UInt(s.build_panics)),
                ])
            }
            TenantEngine::Cold(c) => {
                let t = c.stats();
                Value::Map(vec![
                    ("kind".into(), Value::Str("cold".into())),
                    ("rows".into(), Value::UInt(c.len() as u64)),
                    ("hits".into(), Value::UInt(t.hits)),
                    ("misses".into(), Value::UInt(t.misses)),
                    ("evictions".into(), Value::UInt(t.evictions)),
                    ("prefetches".into(), Value::UInt(t.prefetches)),
                    ("bytes_resident".into(), Value::UInt(t.bytes_resident)),
                    ("pinned_leaves".into(), Value::UInt(t.pinned_leaves as u64)),
                    ("budget_bytes".into(), Value::UInt(t.budget_bytes)),
                ])
            }
            TenantEngine::Replica { replica, state, source } => {
                let rows = replica.next_row();
                let leader_rows = state.leader_rows.load(Ordering::Relaxed);
                let lag = leader_rows.saturating_sub(rows);
                let leaf = replica.engine().config().leaf_size.max(1) as u64;
                let (duplicates, verified, unverified) = replica.apply_counters();
                Value::Map(vec![
                    ("kind".into(), Value::Str("replica".into())),
                    ("rows".into(), Value::UInt(rows)),
                    ("leader".into(), Value::Str(format!("{}/{}", source.addr, source.tenant))),
                    ("leader_rows".into(), Value::UInt(leader_rows)),
                    ("lag_rows".into(), Value::UInt(lag)),
                    ("lag_segments".into(), Value::UInt(lag / leaf)),
                    ("connected".into(), Value::Bool(state.connected.load(Ordering::Relaxed))),
                    ("promoted".into(), Value::Bool(replica.is_promoted())),
                    ("reconnects".into(), Value::UInt(state.reconnects.load(Ordering::Relaxed))),
                    ("duplicates_skipped".into(), Value::UInt(duplicates)),
                    ("seals_verified".into(), Value::UInt(verified)),
                    ("seals_unverified".into(), Value::UInt(unverified)),
                    (
                        "last_error".into(),
                        Value::Str(
                            state
                                .last_error
                                .lock()
                                .map_or_else(|_| String::new(), |e| e.clone().unwrap_or_default()),
                        ),
                    ),
                ])
            }
        }
    }

    /// The leader-side follower section of `/stats`: per-follower acked
    /// row, rows behind, and segments behind. `None` when this tenant has
    /// never had a subscriber.
    pub fn followers_value(&self) -> Option<Value> {
        let followers = self.followers.lock().ok()?;
        if followers.is_empty() {
            return None;
        }
        let rows = self.len() as u64;
        let leaf = match &self.engine {
            TenantEngine::Streaming(e) => e.config().leaf_size.max(1) as u64,
            TenantEngine::Cold(c) => c.config().leaf_size.max(1) as u64,
            TenantEngine::Replica { replica, .. } => {
                replica.engine().config().leaf_size.max(1) as u64
            }
        };
        let entries = followers
            .iter()
            .map(|(id, info)| {
                let behind = rows.saturating_sub(info.acked_row);
                (
                    id.clone(),
                    Value::Map(vec![
                        ("acked_row".into(), Value::UInt(info.acked_row)),
                        ("rows_behind".into(), Value::UInt(behind)),
                        ("segments_behind".into(), Value::UInt(behind / leaf)),
                        ("connected".into(), Value::Bool(info.connected)),
                    ]),
                )
            })
            .collect();
        Some(Value::Map(entries))
    }

    /// Health as JSON: stable label, halted flag, failing chains, and the
    /// diagnostic failure log.
    pub fn health_value(&self) -> Value {
        let health = self.health();
        let failed = match &health {
            EngineHealth::Degraded { failed_chains } => {
                failed_chains.iter().map(|&c| Value::UInt(c as u64)).collect()
            }
            _ => Vec::new(),
        };
        Value::Map(vec![
            ("status".into(), Value::Str(health.label().into())),
            ("halted".into(), Value::Bool(health.is_halted())),
            ("failed_chains".into(), Value::Seq(failed)),
            (
                "failure_log".into(),
                Value::Seq(self.failure_log().into_iter().map(Value::Str).collect()),
            ),
        ])
    }
}

/// Errors a tenant operation can surface to the protocol layer.
#[derive(Debug)]
pub enum TenantError {
    /// Insert on a cold (read-only) tenant.
    ReadOnly,
    /// The engine rejected the operation.
    Engine(MbiError),
}

impl From<MbiError> for TenantError {
    fn from(e: MbiError) -> Self {
        TenantError::Engine(e)
    }
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::ReadOnly => write!(f, "tenant is read-only"),
            TenantError::Engine(e) => write!(f, "{e}"),
        }
    }
}

/// All tenants of one server, resolved at start-up.
pub struct TenantRegistry {
    tenants: Vec<Arc<Tenant>>,
}

impl TenantRegistry {
    /// Builds every tenant's engine from the server config.
    ///
    /// Shared-resource division: `engine.builder_threads` is split evenly
    /// across streaming tenants (each gets at least 1), and the index
    /// config's `ram_budget_bytes` is split evenly across cold tenants —
    /// the documented approximation of one shared pool/budget.
    pub fn build(config: &ServerConfig) -> Result<TenantRegistry, MbiError> {
        let invalid =
            |msg: String| MbiError::Io(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg));
        for (i, a) in config.tenants.iter().enumerate() {
            for b in &config.tenants[i + 1..] {
                if a.name == b.name {
                    return Err(invalid(format!("duplicate tenant name {:?}", a.name)));
                }
                if a.token == b.token {
                    return Err(invalid(format!(
                        "tenants {:?} and {:?} share a token",
                        a.name, b.name
                    )));
                }
            }
        }
        let streaming = config.tenants.iter().filter(|t| t.cold_path.is_none()).count().max(1);
        let cold_count =
            config.tenants.iter().filter(|t| t.cold_path.is_some()).count().max(1) as u64;
        let mut engine = config.engine;
        engine.builder_threads = (engine.builder_threads / streaming).max(1);
        let mut tenants = Vec::with_capacity(config.tenants.len());
        for tc in &config.tenants {
            let engine_impl = Self::build_engine(config, tc, engine, cold_count)?;
            tenants.push(Arc::new(Tenant {
                name: tc.name.clone(),
                token: tc.token.clone(),
                engine: engine_impl,
                metrics: TenantMetrics::default(),
                coalescer: Coalescer::new(config.coalesce_window, config.coalesce_max_batch),
                followers: Mutex::new(BTreeMap::new()),
            }));
        }
        Ok(TenantRegistry { tenants })
    }

    fn build_engine(
        config: &ServerConfig,
        tc: &TenantConfig,
        engine: mbi_core::EngineConfig,
        cold_count: u64,
    ) -> Result<TenantEngine, MbiError> {
        if let Some(source) = &tc.replica_of {
            let dir = tc.dir.as_ref().ok_or_else(|| {
                MbiError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("replica tenant {:?} needs a durable dir", tc.name),
                ))
            })?;
            let replica = Arc::new(Replica::open(dir, config.index, engine)?);
            return Ok(TenantEngine::Replica {
                replica,
                state: Arc::new(ReplicaState::new()),
                source: source.clone(),
            });
        }
        if let Some(path) = &tc.cold_path {
            let share = config.index.ram_budget_bytes / cold_count;
            return Ok(TenantEngine::Cold(ColdIndex::open_with_budget(path, share)?));
        }
        if let Some(dir) = &tc.dir {
            return Ok(TenantEngine::Streaming(StreamingMbi::open(dir, config.index, engine)?));
        }
        Ok(TenantEngine::Streaming(StreamingMbi::with_engine_config(config.index, engine)))
    }

    /// Resolves a `(tenant, token)` pair. Both must match: a valid token
    /// for tenant A presented against tenant B's namespace is rejected,
    /// which is the cross-tenant isolation property the integration tests
    /// assert.
    pub fn authenticate(&self, name: &str, token: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.name == name).filter(|t| t.token_matches(token))
    }

    /// Resolves a token alone to its unique tenant (the convenience path
    /// for single-tenant clients that do not name a namespace).
    pub fn by_token(&self, token: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.token_matches(token))
    }

    /// Looks a tenant up by name (no auth — used for metrics attribution).
    pub fn by_name(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// All tenants.
    pub fn all(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    /// Whether any tenant's engine is halted (drives the `/healthz` status
    /// code).
    pub fn any_halted(&self) -> bool {
        self.tenants.iter().any(|t| t.health().is_halted())
    }
}
