//! The compact binary protocol — the throughput path.
//!
//! A connection opens with the 4-byte magic `MBI1` (how the server tells
//! the two protocols apart), then exchanges frames:
//!
//! ```text
//! request:  [u32 len][u8 op][payload]          len = 1 + payload bytes
//! response: [u32 len][u8 status][payload]
//! ```
//!
//! All integers are little-endian. Ops:
//!
//! | op | name   | request payload                                           |
//! |----|--------|-----------------------------------------------------------|
//! | 01 | AUTH   | u16 name_len, name, u16 token_len, token                  |
//! | 02 | QUERY  | u32 k, i64 from, i64 to, u32 deadline_ms (0 = default), u32 dim, dim × f32 |
//! | 03 | INSERT | i64 timestamp, u32 dim, dim × f32                         |
//! | 04 | STATS  | (empty)                                                   |
//! | 05 | PING   | (empty)                                                   |
//! | 06 | HEALTH | (empty)                                                   |
//! | 07 | REPL_SUBSCRIBE | u16 id_len, follower id, u64 start_row            |
//! | 08 | PROMOTE | (empty)                                                  |
//!
//! Status 0 is OK; the non-zero codes mirror the HTTP error statuses. OK
//! payloads: QUERY → `u8 flags` (bit 0 coalesced, bit 1 timed-out/partial),
//! `u32 n`, then `n × (u32 id, i64 timestamp, f32 dist)`; INSERT → `u32 id`;
//! STATS/HEALTH → a JSON document; AUTH/PING/PROMOTE → empty. Every error
//! payload is a human-readable message.
//!
//! # Replication frames
//!
//! `REPL_SUBSCRIBE` flips the connection into a **push stream**: the OK
//! reply carries `u32 dim, u32 leaf_size, u64 leader_rows`, and from then on
//! the leader pushes frames tagged with the `REPL_*` constants below
//! ([`REPL_RECORD`], [`REPL_SEAL`], [`REPL_HEARTBEAT`], [`REPL_ERR`]) while
//! the follower sends [`REPL_ACK`] frames upstream on the same socket.
//! Record frames carry their own CRC-checked WAL payload; seal frames carry
//! the leader's segment CRC the follower verifies its own bytes against.

use mbi_core::TknnResult;
use std::io::{Read, Write};

/// The protocol magic a binary connection opens with.
pub const MAGIC: [u8; 4] = *b"MBI1";

/// Largest frame either side accepts (guards against garbage lengths).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Request opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Authenticate the connection for one tenant.
    Auth = 0x01,
    /// One kNN query.
    Query = 0x02,
    /// One insert.
    Insert = 0x03,
    /// Tenant + server stats as JSON.
    Stats = 0x04,
    /// Liveness no-op.
    Ping = 0x05,
    /// Engine health as JSON.
    Health = 0x06,
    /// Subscribe this connection as a replication follower (push mode).
    ReplSubscribe = 0x07,
    /// Promote a replica tenant: verify its tail and open it for writes.
    Promote = 0x08,
}

impl Op {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        match b {
            0x01 => Some(Op::Auth),
            0x02 => Some(Op::Query),
            0x03 => Some(Op::Insert),
            0x04 => Some(Op::Stats),
            0x05 => Some(Op::Ping),
            0x06 => Some(Op::Health),
            0x07 => Some(Op::ReplSubscribe),
            0x08 => Some(Op::Promote),
            _ => None,
        }
    }
}

/// Push frame (leader → follower): one WAL record —
/// `u64 row, i64 timestamp, u32 dim, dim × f32`.
pub const REPL_RECORD: u8 = 0x41;
/// Push frame (leader → follower): a segment sealed — `u64 segment, u32 crc`.
pub const REPL_SEAL: u8 = 0x42;
/// Push frame (leader → follower): keep-alive with `u64 leader_rows`.
pub const REPL_HEARTBEAT: u8 = 0x43;
/// Push frame (leader → follower): terminal link error; payload is the
/// message. The follower decides from the message whether to reconnect
/// (transient) or stop (divergence/eviction).
pub const REPL_ERR: u8 = 0x44;
/// Upstream frame (follower → leader): `u64 next_row` — every row below it
/// is durable at the follower; the leader moves its retention hold there.
pub const REPL_ACK: u8 = 0x45;

/// Response status codes, mirroring the HTTP statuses of the JSON protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success.
    Ok = 0,
    /// Bad or cross-tenant credentials (HTTP 401/403).
    Unauthorized = 1,
    /// Shed by the admission gate (HTTP 503).
    Overloaded = 2,
    /// Deadline exceeded (HTTP 408).
    Timeout = 3,
    /// Malformed frame or arguments (HTTP 400).
    BadRequest = 4,
    /// Engine or I/O failure (HTTP 500).
    Internal = 5,
    /// Insert on a read-only tenant (HTTP 403).
    ReadOnly = 6,
}

impl Status {
    /// Decodes a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Unauthorized),
            2 => Some(Status::Overloaded),
            3 => Some(Status::Timeout),
            4 => Some(Status::BadRequest),
            5 => Some(Status::Internal),
            6 => Some(Status::ReadOnly),
            _ => None,
        }
    }
}

/// QUERY response flag: the query was answered through a coalesced batch.
pub const FLAG_COALESCED: u8 = 1 << 0;
/// QUERY response flag: the deadline expired; results are partial.
pub const FLAG_TIMED_OUT: u8 = 1 << 1;

/// Reads one frame, returning the tag byte (op or status) and payload.
/// `Ok(None)` means the peer closed cleanly between frames.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    read_frame_limit(r, MAX_FRAME)
}

/// [`read_frame`] with an explicit frame-size cap (the server's slow-loris
/// guard configures a tighter one than the protocol-wide [`MAX_FRAME`]).
/// An oversized length errors with a message containing `"exceeds cap"` —
/// the caller can tell it apart from other framing errors.
pub fn read_frame_limit<R: Read>(r: &mut R, max: usize) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "zero-length frame"));
    }
    if len > max.min(MAX_FRAME) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {}", max.min(MAX_FRAME)),
        ));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut payload = vec![0u8; len - 1];
    r.read_exact(&mut payload)?;
    Ok(Some((tag[0], payload)))
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = (payload.len() + 1) as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    w.flush()
}

/// A little-endian payload reader with bounds-checked accessors.
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(format!("payload truncated at byte {}", self.pos)),
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a length-prefixed (`u16`) UTF-8 string.
    pub fn str16(&mut self) -> Result<String, String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "string not utf-8".into())
    }

    /// Reads `n` consecutive `f32`s.
    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let bytes = self.take(n.checked_mul(4).ok_or("vector length overflow")?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Asserts the payload is fully consumed.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in payload", self.bytes.len() - self.pos))
        }
    }
}

/// Builds the little-endian payloads the reader parses.
#[derive(Default)]
pub struct PayloadWriter {
    bytes: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u16`.
    pub fn u16(mut self, v: u16) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `i64`.
    pub fn i64(mut self, v: i64) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a single byte.
    pub fn u8(mut self, v: u8) -> Self {
        self.bytes.push(v);
        self
    }

    /// Appends a length-prefixed (`u16`) string.
    pub fn str16(mut self, s: &str) -> Self {
        assert!(s.len() <= u16::MAX as usize, "string too long for u16 prefix");
        self.bytes.extend_from_slice(&(s.len() as u16).to_le_bytes());
        self.bytes.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends raw f32s.
    pub fn f32s(mut self, vs: &[f32]) -> Self {
        for v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// The finished payload.
    pub fn build(self) -> Vec<u8> {
        self.bytes
    }
}

/// Encodes a QUERY OK payload.
pub fn encode_results(results: &[TknnResult], flags: u8) -> Vec<u8> {
    let mut w = PayloadWriter::new().u8(flags).u32(results.len() as u32);
    for r in results {
        w = w.u32(r.id).i64(r.timestamp);
        w.bytes.extend_from_slice(&r.dist.to_le_bytes());
    }
    w.build()
}

/// Decodes a QUERY OK payload into `(flags, results)`.
pub fn decode_results(payload: &[u8]) -> Result<(u8, Vec<TknnResult>), String> {
    let mut r = PayloadReader::new(payload);
    let flags = *r.take(1)?.first().expect("1 byte");
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(TknnResult { id: r.u32()?, timestamp: r.i64()?, dist: r.f32()? });
    }
    r.finish()?;
    Ok((flags, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Op::Query as u8, b"payload").unwrap();
        let (tag, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(Op::from_u8(tag), Some(Op::Query));
        assert_eq!(payload, b"payload");
        // Clean EOF between frames is None, not an error.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn bogus_lengths_are_rejected() {
        let mut buf = 0u32.to_le_bytes().to_vec();
        assert!(read_frame(&mut buf.as_slice()).is_err(), "zero length");
        buf = (MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
        assert!(read_frame(&mut buf.as_slice()).is_err(), "oversized length");
    }

    #[test]
    fn frame_limit_is_enforced_and_distinguishable() {
        // A frame within MAX_FRAME but over the caller's cap is rejected
        // with the "exceeds cap" marker the server keys its metrics on.
        let mut buf = Vec::new();
        write_frame(&mut buf, Op::Query as u8, &[0u8; 100]).unwrap();
        let err = read_frame_limit(&mut buf.as_slice(), 64).unwrap_err();
        assert!(err.to_string().contains("exceeds cap"), "{err}");
        // The same frame passes under a roomier cap.
        assert!(read_frame_limit(&mut buf.as_slice(), 4096).unwrap().is_some());
        // Zero-length frames carry a different message.
        let zero = 0u32.to_le_bytes().to_vec();
        let err = read_frame_limit(&mut zero.as_slice(), 64).unwrap_err();
        assert!(!err.to_string().contains("exceeds cap"), "{err}");
    }

    #[test]
    fn u64_roundtrips() {
        let payload = PayloadWriter::new().u64(u64::MAX - 7).u64(0).build();
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.u64().unwrap(), 0);
        r.finish().unwrap();
    }

    #[test]
    fn payloads_roundtrip() {
        let payload =
            PayloadWriter::new().u32(7).i64(-5).str16("tenant-a").f32s(&[1.0, 2.5]).build();
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.str16().unwrap(), "tenant-a");
        assert_eq!(r.f32s(2).unwrap(), vec![1.0, 2.5]);
        r.finish().unwrap();
        // Truncation and trailing garbage are both errors.
        assert!(PayloadReader::new(&payload[..3]).u32().is_err());
        let mut r = PayloadReader::new(&payload);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn results_roundtrip() {
        let results = vec![
            TknnResult { id: 1, timestamp: 10, dist: 0.5 },
            TknnResult { id: 9, timestamp: -3, dist: 2.25 },
        ];
        let enc = encode_results(&results, FLAG_COALESCED);
        let (flags, dec) = decode_results(&enc).unwrap();
        assert_eq!(flags, FLAG_COALESCED);
        assert_eq!(dec.len(), 2);
        assert_eq!((dec[0].id, dec[0].timestamp, dec[0].dist), (1, 10, 0.5));
        assert_eq!((dec[1].id, dec[1].timestamp, dec[1].dist), (9, -3, 2.25));
        assert!(decode_results(&enc[..enc.len() - 1]).is_err());
    }
}
