//! Property test: N concurrent queries routed through the coalescer return
//! results **bit-identical** to serial `query_with_params` calls against
//! the same quiescent engine — across coalesce window sizes, batch caps,
//! burst sizes, and tenant mixes.
//!
//! This is the correctness contract that makes cross-request coalescing
//! safe to enable: it may change *when* a query executes and *with whom*,
//! never *what* it returns.

use mbi_core::{MbiConfig, StreamingMbi, TimeWindow};
use mbi_math::Metric;
use mbi_server::Coalescer;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const DIM: usize = 6;
const ROWS: usize = 300;

fn row(i: usize) -> Vec<f32> {
    let x = i as f32;
    (0..DIM).map(|d| ((d as f32 + 1.0) * x * 0.13).sin() + 0.01 * x).collect()
}

/// Two quiescent engines standing in for two tenants, built once: the
/// property is about the coalescer, so the engines never change mid-suite.
fn tenants() -> &'static [Arc<StreamingMbi>; 2] {
    static ENGINES: OnceLock<[Arc<StreamingMbi>; 2]> = OnceLock::new();
    ENGINES.get_or_init(|| {
        [7usize, 4242].map(|salt| {
            let engine =
                StreamingMbi::new(MbiConfig::new(DIM, Metric::Euclidean).with_leaf_size(32));
            for i in 0..ROWS {
                engine.insert(&row(i * 31 % (ROWS * 2) + salt), i as i64).unwrap();
            }
            engine.flush();
            Arc::new(engine)
        })
    })
}

/// One generated query: which tenant it goes to, its vector seed, k, and
/// its time window.
#[derive(Clone, Debug)]
struct GenQuery {
    tenant: usize,
    seed: usize,
    k: usize,
    from: i64,
    to: i64,
}

fn query_strategy() -> impl Strategy<Value = GenQuery> {
    (0..2usize, 0..500usize, 1..8usize, 0..ROWS as i64, 0..ROWS as i64).prop_map(
        |(tenant, seed, k, a, b)| GenQuery { tenant, seed, k, from: a.min(b), to: a.max(b) + 1 },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn coalesced_bursts_match_serial(
        queries in prop::collection::vec(query_strategy(), 1..10),
        window_ms in prop::sample::select(vec![0u64, 1, 5, 25]),
        max_batch in 2..6usize,
    ) {
        let engines = tenants();
        let params = engines[0].config().search;

        // Serial oracle: one individual engine call per query.
        let serial: Vec<_> = queries
            .iter()
            .map(|q| {
                engines[q.tenant]
                    .query_with_params(&row(q.seed), q.k, TimeWindow::new(q.from, q.to), &params)
                    .results
            })
            .collect();

        // Concurrent run: per-tenant coalescers (as the server holds them),
        // every query on its own thread, all fired together.
        let coalescers: [Arc<Coalescer>; 2] = [0, 1].map(|_| {
            Arc::new(Coalescer::new(Duration::from_millis(window_ms), max_batch))
        });
        let barrier = Arc::new(std::sync::Barrier::new(queries.len()));
        let coalesced: Vec<Vec<mbi_core::TknnResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| {
                    let coalescer = Arc::clone(&coalescers[q.tenant]);
                    let engine = Arc::clone(&engines[q.tenant]);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        coalescer
                            .submit(
                                row(q.seed),
                                q.k,
                                TimeWindow::new(q.from, q.to),
                                |batch| Ok(engine.query_batch(batch, &params, batch.len())),
                            )
                            .expect("quiescent engine cannot fail")
                            .results
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (i, (got, want)) in coalesced.iter().zip(&serial).enumerate() {
            prop_assert_eq!(
                got, want,
                "query {} (tenant {}, k {}, window [{}, {})): coalesced != serial",
                i, queries[i].tenant, queries[i].k, queries[i].from, queries[i].to
            );
        }
    }
}
