//! Loopback integration tests: a real server on 127.0.0.1, real TCP
//! clients on both protocols.
//!
//! The issue's acceptance scenarios live here: two tenants with isolated
//! namespaces and cross-tenant auth rejection, coalesced concurrent queries
//! bit-identical to serial, a deadline-exceeded query answered with an
//! error frame while the server keeps serving, and graceful shutdown
//! checkpointing every durable tenant's WAL.

use mbi_core::{EngineConfig, MbiConfig, StreamingMbi, TimeWindow};
use mbi_math::Metric;
use mbi_server::client::{http_request, BinaryClient, ClientError};
use mbi_server::wire::Status;
use mbi_server::{Server, ServerConfig, TenantConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn index_config() -> MbiConfig {
    MbiConfig::new(4, Metric::Euclidean).with_leaf_size(32)
}

fn row(i: usize) -> [f32; 4] {
    let x = i as f32;
    [(x * 0.31).sin(), (x * 0.17).cos(), 0.05 * x, 1.0]
}

fn start(config: ServerConfig) -> (mbi_server::ServerHandle, SocketAddr) {
    let handle = Server::start(config).expect("server starts");
    let addr = handle.addr();
    (handle, addr)
}

#[test]
fn two_tenants_are_isolated_and_cross_tenant_tokens_rejected() {
    let (handle, addr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::memory("alpha", "tok-a"))
            .with_tenant(TenantConfig::memory("beta", "tok-b")),
    );

    // Populate the two namespaces with disjoint data over the binary
    // protocol: alpha gets rows 0..40, beta gets rows 1000..1040.
    let mut alpha = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
    let mut beta = BinaryClient::connect(addr, "beta", "tok-b").unwrap();
    for i in 0..40 {
        alpha.insert(&row(i), i as i64).unwrap();
        beta.insert(&row(1000 + i), i as i64).unwrap();
    }

    // Each tenant only ever sees its own rows: the nearest neighbour of
    // alpha's first row inside alpha is itself (distance 0), while beta —
    // holding disjoint vectors — answers with a strictly positive distance.
    let a_hit = alpha.query(&row(0), 1, TimeWindow::all(), None).unwrap();
    assert_eq!(a_hit.results[0].dist, 0.0, "alpha finds its own row");
    let b_hit = beta.query(&row(0), 1, TimeWindow::all(), None).unwrap();
    assert!(b_hit.results[0].dist > 0.0, "beta does not hold alpha's rows");

    // Cross-tenant auth: a valid token presented against the *other*
    // namespace is rejected on both protocols.
    match BinaryClient::connect(addr, "beta", "tok-a") {
        Err(ClientError::Server { status: Status::Unauthorized, .. }) => {}
        other => panic!("cross-tenant binary auth should fail, got {other:?}", other = other.err()),
    }
    let (status, body) = http_request(
        addr,
        "POST",
        "/query",
        &[("Authorization", "Bearer tok-a"), ("X-Tenant", "beta")],
        r#"{"vector":[0,0,0,0],"k":1}"#,
    )
    .unwrap();
    assert_eq!(status, 401, "cross-tenant http auth should fail: {body}");

    // Correct HTTP credentials work and answer from the right namespace.
    let (status, body) = http_request(
        addr,
        "POST",
        "/query",
        &[("Authorization", "Bearer tok-b"), ("X-Tenant", "beta")],
        r#"{"vector":[0.5,0.5,0.5,1.0],"k":3}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("results").and_then(|r| r.as_seq()).map(<[_]>::len), Some(3));

    // /healthz needs no auth and lists both tenants as healthy.
    let (status, body) = http_request(addr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    let tenants = v.get("tenants").unwrap();
    for name in ["alpha", "beta"] {
        let health = tenants.get(name).unwrap_or_else(|| panic!("{name} in healthz"));
        assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("healthy"));
    }

    // /stats is per-tenant: alpha's view counts alpha's traffic.
    let stats = serde_json::from_str(&alpha.stats().unwrap()).unwrap();
    assert_eq!(stats.get("tenant").and_then(|t| t.as_str()), Some("alpha"));
    let serving = stats.get("serving").unwrap();
    assert_eq!(serving.get("inserts").and_then(|n| n.as_u64()), Some(40));

    handle.shutdown();
}

#[test]
fn coalesced_concurrent_queries_are_bit_identical_to_serial() {
    let (handle, addr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::memory("alpha", "tok-a"))
            .with_coalescing(Duration::from_millis(40), 8),
    );
    let mut seed = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
    for i in 0..200 {
        seed.insert(&row(i), i as i64).unwrap();
    }

    let queries: Vec<[f32; 4]> = (0..8).map(|i| row(i * 25 + 3)).collect();
    let window = TimeWindow::new(10, 180);

    // Serial reference: an explicit deadline routes around the coalescer,
    // so these answers come from individual engine calls.
    let serial: Vec<_> = queries
        .iter()
        .map(|q| seed.query(q, 5, window, Some(Duration::from_secs(30))).unwrap().results)
        .collect();

    // Concurrent deadline-free queries ride the coalescer. Each thread has
    // its own connection; all eight fire inside one 40 ms window.
    let coalesced: Vec<(Vec<mbi_core::TknnResult>, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                scope.spawn(move || {
                    let mut c = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
                    let reply = c.query(q, 5, window, None).unwrap();
                    (reply.results, reply.coalesced)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, ((got, _), want)) in coalesced.iter().zip(&serial).enumerate() {
        assert_eq!(got, want, "query {i}: coalesced result differs from serial");
    }
    // With an 8-query batch cap and an 8-thread burst, at least some of the
    // queries must actually have shared a batch.
    assert!(
        coalesced.iter().any(|(_, was_coalesced)| *was_coalesced),
        "no query was coalesced — the window never collected a batch"
    );

    handle.shutdown();
}

#[test]
fn deadline_exceeded_returns_error_frame_and_server_keeps_serving() {
    let (handle, addr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::memory("alpha", "tok-a")),
    );
    let mut client = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
    for i in 0..100 {
        client.insert(&row(i), i as i64).unwrap();
    }

    // An already-expired deadline (0 ms, only expressible over HTTP — the
    // binary encoding reserves 0 for "server default") must come back 408
    // with the partial flag, never a hang or a crash.
    let (status, body) = http_request(
        addr,
        "POST",
        "/query",
        &[("Authorization", "Bearer tok-a")],
        r#"{"vector":[0.1,0.9,0.5,1.0],"k":5,"deadline_ms":0}"#,
    )
    .unwrap();
    assert_eq!(status, 408, "{body}");
    let v = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("timed_out").and_then(|b| b.as_bool()), Some(true));

    // The connection and the server both keep serving afterwards.
    let reply = client.query(&row(7), 3, TimeWindow::all(), Some(Duration::from_secs(30))).unwrap();
    assert_eq!(reply.results.len(), 3);
    assert!(!reply.timed_out);
    let (status, _) = http_request(addr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(status, 200);

    // The timeout shows up in the tenant's serving metrics.
    let stats = serde_json::from_str(&client.stats().unwrap()).unwrap();
    let timeouts = stats.get("serving").and_then(|s| s.get("timeouts")).and_then(|t| t.as_u64());
    assert_eq!(timeouts, Some(1));

    handle.shutdown();
}

#[test]
fn graceful_shutdown_checkpoints_durable_tenants() {
    let dir = std::env::temp_dir().join(format!("mbi_server_shutdown_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rows = 75usize;
    {
        let (handle, addr) = start(
            ServerConfig::new("127.0.0.1:0", index_config())
                .with_tenant(TenantConfig::durable("alpha", "tok-a", &dir)),
        );
        let mut client = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
        for i in 0..rows {
            client.insert(&row(i), i as i64).unwrap();
        }
        handle.shutdown();
    }
    // Shutdown checkpointed: the WAL is pruned into the snapshot, and a
    // recovery (what the next `mbi serve` start does) sees every acked row.
    let engine = StreamingMbi::recover(&dir, EngineConfig::default()).unwrap();
    assert_eq!(engine.len(), rows, "every acked insert survived the drain");
    let hit = engine.query(&row(3), 1, TimeWindow::all());
    assert_eq!(hit[0].dist, 0.0);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_cap_refuses_excess_connections() {
    let (handle, addr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::memory("alpha", "tok-a"))
            .with_max_connections(1),
    );
    // First connection occupies the only slot…
    let mut held = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
    held.ping().unwrap();
    // …so the next one is refused with an immediate overload response.
    let refused = http_request(addr, "GET", "/healthz", &[], "");
    match refused {
        Ok((status, _)) => assert_eq!(status, 503),
        // The server may also close before the response is readable.
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        Err(e) => panic!("unexpected refusal shape: {e}"),
    }
    drop(held);
    // Slot freed: new connections serve normally again (the accept loop
    // decrements the gauge when the connection thread exits).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok((200, _)) = http_request(addr, "GET", "/healthz", &[], "") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "connection slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn idle_connections_are_dropped_and_clients_reconnect_transparently() {
    let (handle, addr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::memory("alpha", "tok-a"))
            .with_idle_timeout(Some(Duration::from_millis(150))),
    );
    let mut client = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
    client.insert(&row(0), 0).unwrap();

    // Hold the connection silent past the idle deadline: the server reaps
    // it (a slow-loris peer would hold a thread forever otherwise)…
    std::thread::sleep(Duration::from_millis(500));

    // …and the client's idempotent path reconnects without surfacing an
    // error to the caller.
    let hit = client.query(&row(0), 1, TimeWindow::all(), None).unwrap();
    assert_eq!(hit.results[0].dist, 0.0, "query served after transparent reconnect");

    let stats = serde_json::from_str(&client.stats().unwrap()).unwrap();
    let dropped = stats.get("server").and_then(|s| s.get("idle_dropped")).and_then(|v| v.as_u64());
    assert!(dropped >= Some(1), "idle reap is counted, got {dropped:?}");
    handle.shutdown();
}

#[test]
fn oversized_binary_frame_is_rejected_and_counted() {
    // A 16-byte frame cap (the floor) admits the AUTH frame for short
    // names but nothing query-sized.
    let (handle, addr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::memory("a", "t"))
            .with_max_frame_bytes(16),
    );
    let mut client = BinaryClient::connect(addr, "a", "t").unwrap();
    match client.query(&row(0), 1, TimeWindow::all(), None) {
        Err(ClientError::Server { status: Status::BadRequest, message }) => {
            assert!(message.contains("frame too large"), "{message}");
        }
        other => panic!("oversized frame should be refused, got {other:?}", other = other.err()),
    }
    // The guard is observable: a fresh (small-framed) stats call sees the
    // oversize counter.
    let (status, body) = http_request(
        addr,
        "GET",
        "/stats",
        &[("Authorization", "Bearer t"), ("X-Tenant", "a")],
        "",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let stats = serde_json::from_str(&body).unwrap();
    let oversized = stats.get("server").and_then(|s| s.get("oversized")).and_then(|v| v.as_u64());
    assert!(oversized >= Some(1), "oversized frames are counted, got {oversized:?}");
    handle.shutdown();
}

#[test]
fn oversized_http_head_answers_431() {
    let (handle, addr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::memory("alpha", "tok-a")),
    );
    // A 20 KiB header blows the 16 KiB request-head cap.
    let padding = "x".repeat(20 * 1024);
    let (status, body) =
        http_request(addr, "GET", "/healthz", &[("X-Padding", &padding)], "").unwrap();
    assert_eq!(status, 431, "{body}");
    // The server survives and keeps serving normal requests.
    let (status, _) = http_request(addr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}
