//! Loopback replication tests: a real leader server and a real follower
//! server on 127.0.0.1, wired through `REPL_SUBSCRIBE` over the binary
//! protocol.
//!
//! The issue's acceptance scenario lives here: a follower serving read-only
//! queries while it lags, catching up to a bit-identical copy of the
//! leader's index, then being promoted and accepting writes.

use mbi_core::{MbiConfig, TimeWindow};
use mbi_math::Metric;
use mbi_server::client::{http_request, BinaryClient, ClientError};
use mbi_server::wire::Status;
use mbi_server::{ReplicaSource, Server, ServerConfig, TenantConfig, TenantEngine};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A small leaf so a few dozen inserts cross several segment seals.
fn index_config() -> MbiConfig {
    MbiConfig::new(4, Metric::Euclidean).with_leaf_size(8)
}

fn row(i: usize) -> [f32; 4] {
    let x = i as f32;
    [(x * 0.31).sin(), (x * 0.17).cos(), 0.05 * x, 1.0]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbi_repl_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(config: ServerConfig) -> (mbi_server::ServerHandle, SocketAddr) {
    let handle = Server::start(config).expect("server starts");
    let addr = handle.addr();
    (handle, addr)
}

/// Polls until the named tenant holds `rows`, panicking after `wait`.
fn wait_for_rows(handle: &mbi_server::ServerHandle, name: &str, rows: usize, wait: Duration) {
    let deadline = Instant::now() + wait;
    loop {
        let got = handle.registry().by_name(name).expect("tenant exists").len();
        if got >= rows {
            return;
        }
        assert!(Instant::now() < deadline, "follower stuck at {got}/{rows} rows");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn follower_serves_while_lagging_then_promotes_and_accepts_writes() {
    let ldir = temp_dir("leader");
    let fdir = temp_dir("follower");

    // Leader: one durable streaming tenant, populated over the binary
    // protocol *before* the follower exists — it must backfill from row 0.
    let (leader, laddr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::durable("alpha", "tok-a", &ldir)),
    );
    let mut lc = BinaryClient::connect(laddr, "alpha", "tok-a").unwrap();
    for i in 0..100 {
        lc.insert(&row(i), i as i64).unwrap();
    }

    // Follower: a replica tenant tailing the leader.
    let source =
        ReplicaSource { addr: laddr.to_string(), tenant: "alpha".into(), token: "tok-a".into() };
    let (follower, faddr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::replica("alpha", "tok-a", &fdir, source)),
    );

    // The follower serves reads from the instant it starts — even before
    // (and while) it catches up — and refuses writes.
    let mut fc = BinaryClient::connect(faddr, "alpha", "tok-a").unwrap();
    let early = fc.query(&row(3), 1, TimeWindow::all(), None).unwrap();
    assert!(early.results.len() <= 1, "read-only query is served while lagging");
    match fc.insert(&row(0), 0) {
        Err(ClientError::Server { status: Status::ReadOnly, .. }) => {}
        other => panic!("insert on an unpromoted replica must be ReadOnly, got {other:?}"),
    }

    // Catch-up: the tailing thread backfills all 100 rows.
    wait_for_rows(&follower, "alpha", 100, Duration::from_secs(20));
    let hit = fc.query(&row(3), 1, TimeWindow::all(), None).unwrap();
    assert_eq!(hit.results[0].dist, 0.0, "replicated row answers with distance zero");

    // Live tail: new leader rows arrive without a resubscribe.
    for i in 100..120 {
        lc.insert(&row(i), i as i64).unwrap();
    }
    wait_for_rows(&follower, "alpha", 120, Duration::from_secs(20));

    // Leader-side observability: /stats lists the follower with its lag.
    let stats = serde_json::from_str(&lc.stats().unwrap()).unwrap();
    let entry = stats
        .get("followers")
        .and_then(|f| f.get("alpha"))
        .expect("leader /stats lists the subscribed follower");
    assert_eq!(entry.get("connected").and_then(|c| c.as_bool()), Some(true));
    assert!(entry.get("rows_behind").and_then(|r| r.as_u64()).is_some());

    // The acceptance bar: the follower's index is *bit-identical* to the
    // leader's, not merely the same row count.
    let lt = leader.registry().by_name("alpha").unwrap();
    let ft = follower.registry().by_name("alpha").unwrap();
    let TenantEngine::Streaming(le) = &lt.engine else { panic!("leader tenant is streaming") };
    let TenantEngine::Replica { replica, state, .. } = &ft.engine else {
        panic!("follower tenant is a replica")
    };
    le.flush();
    replica.engine().flush();
    assert_eq!(
        le.to_index().to_bytes(),
        replica.engine().to_index().to_bytes(),
        "follower is bit-identical to the leader"
    );
    assert!(state.connected.load(Ordering::Relaxed), "link is up");

    // Failover: promote the follower and it starts accepting writes.
    fc.promote().unwrap();
    fc.insert(&row(120), 120).unwrap();
    assert_eq!(follower.registry().by_name("alpha").unwrap().len(), 121);
    let fstats = serde_json::from_str(&fc.stats().unwrap()).unwrap();
    let engine = fstats.get("engine").expect("tenant stats carry an engine section");
    assert_eq!(engine.get("kind").and_then(|k| k.as_str()), Some("replica"));
    assert_eq!(engine.get("promoted").and_then(|p| p.as_bool()), Some(true));

    follower.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn healthz_degrades_when_replication_lag_exceeds_threshold() {
    let fdir = temp_dir("laggy");
    // The leader address is a closed port: the follower retries in the
    // background and simply stays behind.
    let source =
        ReplicaSource { addr: "127.0.0.1:1".into(), tenant: "alpha".into(), token: "t".into() };
    let (follower, faddr) = start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_replica_lag_warn(10)
            .with_tenant(TenantConfig::replica("alpha", "tok-a", &fdir, source)),
    );

    // No leader observed yet → lag unknown (zero) → healthy.
    let (status, body) = http_request(faddr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));

    // Simulate an observed-then-lost leader far ahead of us: lag 1000
    // rows against a warn threshold of 10.
    let tenant = follower.registry().by_name("alpha").unwrap();
    let TenantEngine::Replica { state, .. } = &tenant.engine else { panic!("replica tenant") };
    state.leader_rows.store(1000, Ordering::Relaxed);
    assert_eq!(tenant.replication_lag_rows(), Some(1000));

    // Degraded, but still 200: the replica keeps serving stale reads.
    let (status, body) = http_request(faddr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("degraded"), "{body}");

    follower.shutdown();
    let _ = std::fs::remove_dir_all(&fdir);
}
