//! Link-level fault injection over real loopback replication, compiled only
//! under `RUSTFLAGS='--cfg failpoints'`. Lives in its own test binary so
//! the process-global failpoint registry cannot race the clean replication
//! tests.
#![cfg(failpoints)]

use mbi_core::{fail, MbiConfig};
use mbi_math::Metric;
use mbi_server::client::BinaryClient;
use mbi_server::{ReplicaSource, Server, ServerConfig, TenantConfig, TenantEngine};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The failpoint registry is process-global; serialise the tests so one
/// stream cannot consume the other's armed fault.
static SERIAL: Mutex<()> = Mutex::new(());

fn index_config() -> MbiConfig {
    MbiConfig::new(4, Metric::Euclidean).with_leaf_size(8)
}

fn row(i: usize) -> [f32; 4] {
    let x = i as f32;
    [(x * 0.31).sin(), (x * 0.17).cos(), 0.05 * x, 1.0]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbi_replfault_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A frame torn mid-record on the wire (half the bytes, then a severed
/// socket) must not corrupt the follower: it reconnects from its durable
/// cursor and converges bit-identically.
#[test]
fn torn_push_frame_reconnects_and_converges_bit_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ldir = temp_dir("torn_leader");
    let fdir = temp_dir("torn_follower");
    let leader = Server::start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::durable("alpha", "tok-a", &ldir)),
    )
    .unwrap();
    let mut lc = BinaryClient::connect(leader.addr(), "alpha", "tok-a").unwrap();
    for i in 0..60 {
        lc.insert(&row(i), i as i64).unwrap();
    }

    // The 11th record push sends half a frame and severs the socket.
    fail::arm("repl::send_record", fail::FailAction::ShortWrite, 10, 1);
    let source = ReplicaSource {
        addr: leader.addr().to_string(),
        tenant: "alpha".into(),
        token: "tok-a".into(),
    };
    let follower = Server::start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::replica("alpha", "tok-a", &fdir, source)),
    )
    .unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = follower.registry().by_name("alpha").unwrap().len();
        if got >= 60 {
            break;
        }
        assert!(Instant::now() < deadline, "follower stuck at {got}/60 after torn frame");
        std::thread::sleep(Duration::from_millis(10));
    }
    fail::disarm_all();

    let lt = leader.registry().by_name("alpha").unwrap();
    let ft = follower.registry().by_name("alpha").unwrap();
    let TenantEngine::Streaming(le) = &lt.engine else { panic!("leader tenant is streaming") };
    let TenantEngine::Replica { replica, state, .. } = &ft.engine else {
        panic!("follower tenant is a replica")
    };
    assert!(state.reconnects.load(Ordering::Relaxed) >= 1, "the torn link forced a reconnect");
    le.flush();
    replica.engine().flush();
    assert_eq!(
        le.to_index().to_bytes(),
        replica.engine().to_index().to_bytes(),
        "follower is bit-identical after surviving a torn frame"
    );

    follower.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// A clean disconnect between frames (injected `IoError` on the push path)
/// is transparent: reconnect, resume, converge.
#[test]
fn disconnect_between_frames_is_transparent() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ldir = temp_dir("disc_leader");
    let fdir = temp_dir("disc_follower");
    let leader = Server::start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::durable("beta", "tok-b", &ldir)),
    )
    .unwrap();
    let mut lc = BinaryClient::connect(leader.addr(), "beta", "tok-b").unwrap();
    for i in 0..40 {
        lc.insert(&row(i), i as i64).unwrap();
    }

    // Sever the link on the seal push after the first segment.
    fail::arm("repl::send_seal", fail::FailAction::IoError, 1, 1);
    let source = ReplicaSource {
        addr: leader.addr().to_string(),
        tenant: "beta".into(),
        token: "tok-b".into(),
    };
    let follower = Server::start(
        ServerConfig::new("127.0.0.1:0", index_config())
            .with_tenant(TenantConfig::replica("beta", "tok-b", &fdir, source)),
    )
    .unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = follower.registry().by_name("beta").unwrap().len();
        if got >= 40 {
            break;
        }
        assert!(Instant::now() < deadline, "follower stuck at {got}/40 after disconnect");
        std::thread::sleep(Duration::from_millis(10));
    }
    fail::disarm_all();

    let lt = leader.registry().by_name("beta").unwrap();
    let ft = follower.registry().by_name("beta").unwrap();
    let TenantEngine::Streaming(le) = &lt.engine else { panic!("leader tenant is streaming") };
    let TenantEngine::Replica { replica, .. } = &ft.engine else {
        panic!("follower tenant is a replica")
    };
    le.flush();
    replica.engine().flush();
    assert_eq!(le.to_index().to_bytes(), replica.engine().to_index().to_bytes());

    follower.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}
