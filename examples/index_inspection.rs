//! Index inspection and batch querying: the operational side of running MBI
//! in production — structure dumps, per-level size accounting (the
//! `O(|D| log |D|)` of §4.4.1 made visible), integrity validation, and the
//! parallel batch-query API.
//!
//! Run with:
//! ```sh
//! cargo run --release --example index_inspection
//! ```

use mbi::{GraphBackend, MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams, TimeWindow};
use mbi_data::DriftingMixture;

fn main() {
    let dataset = DriftingMixture { drift: 1.0, ..DriftingMixture::new(32, 99) }.generate(
        "inspect",
        Metric::Euclidean,
        10_000,
        32,
    );

    let mut index = MbiIndex::new(
        MbiConfig::new(32, Metric::Euclidean)
            .with_leaf_size(1024)
            .with_backend(GraphBackend::NnDescent(NnDescentParams {
                degree: 16,
                ..Default::default()
            }))
            .with_search(SearchParams::new(64, 1.15)),
    );
    for (v, t) in dataset.iter() {
        index.insert(v, t).unwrap();
    }

    // 1. The block tree, as the postorder layout the paper's Figure 1 draws.
    println!("=== block tree ===\n{}", index.render_tree());

    // 2. Per-level accounting: every level stores (nearly) the same graph
    //    bytes — the log factor of the O(|D| log |D|) size bound.
    println!("=== per-level graph bytes ===");
    for l in index.level_stats() {
        println!(
            "height {}: {:>2} blocks covering {:>6} rows — {:>8.1} KiB",
            l.height,
            l.blocks,
            l.rows,
            l.graph_bytes as f64 / 1024.0
        );
    }
    println!(
        "total index: {:.2} MiB over {:.2} MiB of raw data",
        index.index_memory_bytes() as f64 / (1 << 20) as f64,
        index.data_bytes() as f64 / (1 << 20) as f64
    );

    // 3. Structural validation — the same check `from_bytes` runs on loads.
    index.validate().expect("freshly built index is consistent");
    println!("\nvalidate(): ok");

    // 4. Batch queries fan out across cores; results match one-at-a-time.
    let batch: Vec<(Vec<f32>, usize, TimeWindow)> = (0..32)
        .map(|i| {
            let q = dataset.test.get(i % dataset.test.len()).to_vec();
            let s = (i as i64 * 200) % 8_000;
            (q, 10, TimeWindow::new(s, s + 2_000))
        })
        .collect();
    let t0 = std::time::Instant::now();
    let answers = index.query_batch(&batch, &index.config().search, 0);
    let elapsed = t0.elapsed();
    let hits: usize = answers.iter().map(Vec::len).sum();
    println!(
        "\nbatch: {} queries → {} results in {:.2?} ({:.0} qps)",
        batch.len(),
        hits,
        elapsed,
        batch.len() as f64 / elapsed.as_secs_f64()
    );
    for (i, (q, k, w)) in batch.iter().enumerate().take(2) {
        let single = index.query(q, *k, *w);
        assert_eq!(single, answers[i], "batch result matches single-query path");
    }
    println!("batch results verified against single-query path");
}
