//! Movie catalogue: "which 5 movies released between 1980 and 1995 are most
//! similar to this one?" — the paper's other motivating query, demonstrating
//! the τ auto-tuner (§5.4.2: precompute the optimal τ per query interval and
//! use it at run-time).
//!
//! Run with:
//! ```sh
//! cargo run --release --example movie_catalog
//! ```

use mbi::core::tuner::{query_with_tau, TunerConfig};
use mbi::{MbiConfig, MbiIndex, SearchParams, TauTuner, TimeWindow};
use mbi_data::presets::MOVIELENS;
use std::time::Instant;

fn main() {
    // A MovieLens-shaped stand-in: 32-d angular embeddings, release years as
    // timestamps (accelerating — more movies come out each year).
    let dataset = MOVIELENS.generate(0.35, 2024); // ~20k movies
    println!(
        "catalogue: {} movies, {}-d {} embeddings",
        dataset.len(),
        dataset.dim(),
        dataset.metric
    );

    let search = SearchParams::new(64, 1.15);
    let mut index = MbiIndex::new(
        MbiConfig::new(dataset.dim(), dataset.metric)
            .with_leaf_size(1500)
            .with_tau(0.5)
            .with_search(search),
    );
    for (v, t) in dataset.iter() {
        index.insert(v, t).unwrap();
    }

    // Map the timestamp horizon onto "years" for display: the generator's
    // horizon spans 1930–2024.
    let t_min = dataset.timestamps[0];
    let t_max = dataset.timestamps[dataset.len() - 1];
    let year = |t: i64| 1930 + ((t - t_min) * 94 / (t_max - t_min + 1));
    let from_year = |y: i64| t_min + (y - 1930) * (t_max - t_min + 1) / 94;

    // "Movies released 1980–1995 most similar to this query embedding".
    let zootopia = dataset.test.get(0);
    let window = TimeWindow::new(from_year(1980), from_year(1996));
    let hits = index.query(zootopia, 5, window);
    println!("\nfive most similar movies released 1980–1995:");
    for (rank, h) in hits.iter().enumerate() {
        println!(
            "  {}. movie #{:<6} ({})  distance {:.4}",
            rank + 1,
            h.id,
            year(h.timestamp),
            h.dist
        );
    }

    // Calibrate τ per window length — short windows prefer larger τ (smaller
    // blocks), long windows prefer smaller τ (one big block).
    println!("\ncalibrating τ per window length…");
    let queries: Vec<Vec<f32>> =
        (0..dataset.test.len().min(8)).map(|i| dataset.test.get(i).to_vec()).collect();
    let tuner_cfg = TunerConfig {
        taus: vec![0.1, 0.3, 0.5, 0.7, 0.9],
        bucket_edges: vec![0.05, 0.2, 0.5, 1.0],
        min_recall: 0.9,
        k: 5,
        search,
    };
    let t = Instant::now();
    let tuner = TauTuner::calibrate(&index, &queries, &tuner_cfg);
    println!("calibrated in {:.2?}:", t.elapsed());
    println!("  window fraction ≤ | best τ | mean latency");
    for (edge, tau, lat) in tuner.report() {
        println!(
            "  {:>17} | {:>6} | {}",
            format!("{:.0}%", edge * 100.0),
            tau.map_or("—".into(), |t| format!("{t:.1}")),
            lat.map_or("—".into(), |l| format!("{:.1} µs", l * 1e6)),
        );
    }

    // Use the calibrated τ for a short-window query.
    let short = TimeWindow::new(from_year(1990), from_year(1993));
    let frac = short.len() as f64 / (t_max - t_min + 1) as f64;
    if let Some(tau) = tuner.suggest(frac) {
        let ids = query_with_tau(&index, zootopia, 5, short, tau, &search);
        println!(
            "\nshort window 1990–1992 (fraction {:.1}%): tuned τ = {tau}, top hit movie #{}",
            frac * 100.0,
            ids.first().copied().unwrap_or(0),
        );
    }
}
