//! Photo library: "which 10 photos I took between January 2010 and May 2011
//! are most similar to the one I just took?" — the motivating query from the
//! paper's introduction, with a head-to-head against the BSBF and SF
//! baselines on short vs long date ranges.
//!
//! Run with:
//! ```sh
//! cargo run --release --example photo_library
//! ```

use mbi::baselines::{BsbfIndex, SfConfig, SfIndex};
use mbi::{MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams, TimeWindow};
use mbi_data::{DriftingMixture, TimestampModel};
use std::time::Instant;

/// Days since 2000-01-01 for a (year, month) pair — a toy calendar that is
/// good enough for windowing demo purposes.
fn day(year: i64, month: i64) -> i64 {
    (year - 2000) * 365 + (month - 1) * 30
}

fn main() {
    // 30,000 "photo embeddings" accumulated over ~20 years; shooting rate
    // accelerates (phones!), and subjects drift over time.
    let horizon = day(2020, 1);
    let dataset = DriftingMixture {
        dim: 64,
        clusters: 24,
        spread: 0.12,
        drift: 1.5,
        seed: 7,
        timestamps: TimestampModel::Accelerating { horizon },
    }
    .generate("photos", Metric::Angular, 30_000, 3);

    let degree = 24;
    let search = SearchParams::new(96, 1.15);

    // MBI.
    let t = Instant::now();
    let mut mbi = MbiIndex::new(
        MbiConfig::new(64, Metric::Angular)
            .with_leaf_size(2048)
            .with_tau(0.5)
            .with_backend(mbi::GraphBackend::NnDescent(NnDescentParams {
                degree,
                ..Default::default()
            }))
            .with_search(search),
    );
    for (v, ts) in dataset.iter() {
        mbi.insert(v, ts).unwrap();
    }
    println!("MBI built incrementally in {:.2?}", t.elapsed());

    // BSBF: the sorted data is the index.
    let mut bsbf = BsbfIndex::new(64, Metric::Angular);
    for (v, ts) in dataset.iter() {
        bsbf.insert(v, ts).unwrap();
    }

    // SF: one graph over everything.
    let t = Instant::now();
    let mut sf_cfg = SfConfig::new(64, Metric::Angular);
    sf_cfg.graph = NnDescentParams { degree, ..Default::default() };
    sf_cfg.search = search;
    let sf = SfIndex::build(sf_cfg, dataset.iter()).unwrap();
    println!("SF graph built in one shot in {:.2?}", t.elapsed());

    let camera_roll = dataset.test.get(0); // "the photo you just took"

    let scenarios = [
        ("Jan 2010 – May 2011 (short window)", day(2010, 1), day(2011, 5)),
        ("the 2010s (long window)", day(2010, 1), day(2020, 1)),
    ];

    for (label, t_s, t_e) in scenarios {
        let window = TimeWindow::new(t_s, t_e);
        println!("\n=== {label} ===");

        let exact: Vec<u32> =
            bsbf.query(camera_roll, 10, window).into_iter().map(|r| r.id).collect();

        // Time each method over repeated queries.
        let reps = 50;
        for (name, run) in [
            ("MBI", &(|| mbi.query(camera_roll, 10, window)) as &dyn Fn() -> Vec<mbi::TknnResult>),
            ("BSBF", &(|| bsbf.query(camera_roll, 10, window))),
            ("SF", &(|| sf.query(camera_roll, 10, window))),
        ] {
            let t = Instant::now();
            let mut res = Vec::new();
            for _ in 0..reps {
                res = run();
            }
            let per_query = t.elapsed() / reps;
            let ids: Vec<u32> = res.iter().map(|r| r.id).collect();
            let hits = ids.iter().filter(|id| exact.contains(id)).count();
            println!(
                "{name:>5}: {per_query:>10.1?}/query   recall@10 {:.2}   first hit: photo #{} (day {})",
                hits as f64 / 10.0,
                res.first().map_or(0, |r| r.id),
                res.first().map_or(0, |r| r.timestamp),
            );
        }
    }

    println!(
        "\nindex sizes — MBI: {:.1} MiB, SF: {:.1} MiB, raw data: {:.1} MiB",
        mbi.index_memory_bytes() as f64 / (1 << 20) as f64,
        sf.index_memory_bytes() as f64 / (1 << 20) as f64,
        mbi.data_bytes() as f64 / (1 << 20) as f64,
    );
}
