//! Quickstart: index a stream of timestamped vectors and run TkNN queries.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mbi::{MbiConfig, MbiIndex, Metric, SearchParams, TimeWindow};
use mbi_data::{Dataset, DriftingMixture};

fn main() {
    // A synthetic stream: 20,000 16-dimensional vectors whose distribution
    // drifts over time (like a photo library whose subjects change), plus 5
    // held-out query vectors.
    let dataset: Dataset = DriftingMixture { drift: 1.0, ..DriftingMixture::new(16, 42) }.generate(
        "quickstart",
        Metric::Euclidean,
        20_000,
        5,
    );

    // Configure MBI: leaf blocks of 1024 vectors, τ = 0.5 (the paper's
    // recommendation when nothing is known about the workload).
    let config = MbiConfig::new(dataset.dim(), dataset.metric)
        .with_leaf_size(1024)
        .with_tau(0.5)
        .with_search(SearchParams::new(64, 1.1));
    let mut index = MbiIndex::new(config);

    println!("ingesting {} vectors…", dataset.len());
    let start = std::time::Instant::now();
    for (v, t) in dataset.iter() {
        index.insert(v, t).expect("timestamps arrive in order");
    }
    println!(
        "built {} blocks over {} sealed leaves in {:.2?} ({} tail rows pending)",
        index.blocks().len(),
        index.num_leaves(),
        start.elapsed(),
        index.tail_rows().len(),
    );
    println!(
        "index structures: {:.2} MiB on top of {:.2} MiB of raw data",
        index.index_memory_bytes() as f64 / (1 << 20) as f64,
        index.data_bytes() as f64 / (1 << 20) as f64,
    );

    // TkNN queries over three window lengths: MBI adapts its search block
    // set to each (short windows → small blocks ≈ BSBF; long → big ≈ SF).
    let n = dataset.len() as i64;
    for (label, window) in [
        ("short (2% of history)", TimeWindow::new(n / 2, n / 2 + n / 50)),
        ("medium (30%)", TimeWindow::new(n / 4, n / 4 + 3 * n / 10)),
        ("long (95%)", TimeWindow::new(0, 95 * n / 100)),
    ] {
        let q = dataset.test.get(0);
        let out = index.query_with_params(q, 10, window, &index.config().search);
        println!(
            "\n{label}: window [{}, {}) → {} results, {} block(s) searched, {} distance evals",
            window.start,
            window.end,
            out.results.len(),
            out.stats.blocks_searched,
            out.stats.dist_evals,
        );
        for (rank, r) in out.results.iter().take(3).enumerate() {
            println!("  #{:<2} id={:<6} t={:<6} dist={:.4}", rank + 1, r.id, r.timestamp, r.dist);
        }
        // Verify against the exact answer.
        let exact = index.exact_query(q, 10, window);
        let exact_ids: std::collections::HashSet<u32> = exact.iter().map(|r| r.id).collect();
        let hits = out.results.iter().filter(|r| exact_ids.contains(&r.id)).count();
        println!("  recall@10 vs exact scan: {:.2}", hits as f64 / 10.0);
    }
}
