//! Satellite feed: continuous ingestion with concurrent queries, plus index
//! persistence across "restarts".
//!
//! Models the paper's COMS scenario — a weather satellite producing frames
//! around the clock (GK2A takes 30 pictures per hour) while forecasters run
//! similarity searches over arbitrary historical windows. Demonstrates:
//!
//! * [`ConcurrentMbi`]: inserts and queries from different threads;
//! * parallel bottom-up block merging (§4.2) for ingest spikes;
//! * saving the index to disk and reloading it.
//!
//! Run with:
//! ```sh
//! cargo run --release --example satellite_monitor
//! ```

use mbi::{ConcurrentMbi, MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams, TimeWindow};
use mbi_data::{DriftingMixture, TimestampModel};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

fn main() {
    // 128-d frame embeddings; weather drifts with the seasons.
    let dataset = DriftingMixture {
        dim: 128,
        clusters: 12,
        spread: 0.1,
        drift: 2.0,
        seed: 11,
        timestamps: TimestampModel::Sequential, // one frame per tick
    }
    .generate("satellite", Metric::Angular, 24_000, 4);

    let config = MbiConfig::new(128, Metric::Angular)
        .with_leaf_size(2000)
        .with_tau(0.4)
        .with_backend(mbi::GraphBackend::NnDescent(NnDescentParams {
            degree: 24,
            ..Default::default()
        }))
        .with_search(SearchParams::new(96, 1.15))
        .with_parallel_build(true); // merge chains build their graphs in parallel

    // Phase 1: backfill half the history.
    let index = ConcurrentMbi::new(config);
    let backfill = dataset.len() / 2;
    let t = Instant::now();
    for i in 0..backfill {
        index.insert(dataset.train.get(i), dataset.timestamps[i]).unwrap();
    }
    println!("backfilled {backfill} frames in {:.2?}", t.elapsed());

    // Phase 2: live operation — one ingest thread, three query threads.
    let done = AtomicBool::new(false);
    let queries_run = AtomicU64::new(0);
    let t = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in backfill..dataset.len() {
                index.insert(dataset.train.get(i), dataset.timestamps[i]).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for worker in 0..3 {
            let q = dataset.test.get(worker % dataset.test.len());
            let queries_run = &queries_run;
            let done = &done;
            let index = &index;
            s.spawn(move || {
                let mut rounds = 0u64;
                while !done.load(Ordering::Acquire) {
                    // Forecasters compare against the same season last "year".
                    let window = TimeWindow::new(2_000 + rounds as i64 % 1000, 12_000);
                    let res = index.query(q, 10, window);
                    assert!(res.iter().all(|r| window.contains(r.timestamp)));
                    rounds += 1;
                }
                queries_run.fetch_add(rounds, Ordering::Relaxed);
            });
        }
    });
    println!(
        "live phase: ingested {} frames while serving {} queries in {:.2?}",
        dataset.len() - backfill,
        queries_run.load(Ordering::Relaxed),
        t.elapsed()
    );

    // Phase 3: persistence across a restart.
    let index: MbiIndex = index.into_inner();
    let path = std::env::temp_dir().join("satellite.mbi");
    let t = Instant::now();
    index.save_file(&path).expect("save index");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "\nsaved index: {:.1} MiB in {:.2?} → {}",
        bytes as f64 / (1 << 20) as f64,
        t.elapsed(),
        path.display()
    );

    let t = Instant::now();
    let restored = MbiIndex::load_file(&path).expect("load index");
    println!(
        "reloaded in {:.2?} ({} vectors, {} blocks)",
        t.elapsed(),
        restored.len(),
        restored.blocks().len()
    );

    // The restored index answers identically.
    let q = dataset.test.get(0);
    let w = TimeWindow::new(1_000, 20_000);
    assert_eq!(index.query(q, 10, w), restored.query(q, 10, w));
    println!("restored index verified: identical answers on a spot-check query");
    std::fs::remove_file(&path).ok();
}
