//! # MBI — Multi-level Block Indexing for time-restricted kNN search
//!
//! A from-scratch Rust implementation of *"Efficient Proximity Search in
//! Time-accumulating High-dimensional Data using Multi-level Block Indexing"*
//! (Han, Kim & Park, EDBT 2024), including the full evaluation substrate:
//! the NNDescent/HNSW graph indexes each block uses, the BSBF and SF
//! baselines the paper compares against, synthetic stand-ins for the paper's
//! datasets, and a harness regenerating every table and figure.
//!
//! This crate is the facade: it re-exports the public API of the workspace
//! crates and hosts the runnable examples and cross-crate integration tests.
//!
//! ## The problem
//!
//! A *time-restricted kNN* (TkNN) query `q = (w, k, t_s, t_e)` asks for the
//! `k` vectors nearest to `w` among those with timestamps in `[t_s, t_e)` —
//! "which 10 photos taken between January 2010 and May 2011 are most similar
//! to this one?". Plain ANN indexes either scan the whole window (fast only
//! for short windows) or search-then-filter (fast only for long windows).
//!
//! ## The method
//!
//! [`MbiIndex`] keeps vectors in timestamp order, groups them into leaf
//! blocks of `S_L`, and materialises a perfect binary tree of blocks
//! bottom-up, each with its own graph index. A query picks a minimal set of
//! blocks whose windows it covers densely (overlap ratio > `τ`), searches
//! each with a filtered graph traversal, and merges. With `τ ≤ 0.5` at most
//! two blocks are ever searched (Lemma 4.1).
//!
//! ## Quick start
//!
//! ```
//! use mbi::{MbiConfig, MbiIndex, Metric, TimeWindow};
//!
//! // 8-dimensional vectors under Euclidean distance, tiny blocks for demo.
//! let config = MbiConfig::new(8, Metric::Euclidean).with_leaf_size(128);
//! let mut index = MbiIndex::new(config);
//!
//! // Ingest in timestamp order (here: one vector per "day").
//! for day in 0..2000i64 {
//!     let x = day as f32 * 0.01;
//!     let v = [x.sin(), x.cos(), (2.0 * x).sin(), (2.0 * x).cos(),
//!              (3.0 * x).sin(), (3.0 * x).cos(), x.fract(), 1.0];
//!     index.insert(&v, day).unwrap();
//! }
//!
//! // The 5 nearest neighbours among days [500, 1500).
//! let query = [0.5f32, 0.8, 0.9, 0.1, 0.2, -0.9, 0.3, 1.0];
//! let hits = index.query(&query, 5, TimeWindow::new(500, 1500));
//! assert_eq!(hits.len(), 5);
//! assert!(hits.iter().all(|h| (500..1500).contains(&h.timestamp)));
//! ```
//!
//! See `examples/` for realistic scenarios (photo library, movie catalogue,
//! streaming satellite feed) and `crates/bench` for the paper's experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mbi_core::{
    Backpressure, Block, BlockGraph, ColdIndex, ConcurrentMbi, EngineConfig, EngineHealth,
    EngineStats, GraphBackend, IndexSnapshot, MbiConfig, MbiError, MbiIndex, QueryOutput,
    ReplEvent, Replica, ReplicationCursor, RetryPolicy, SearchBlockSet, StreamingMbi, TauTuner,
    TierStats, TimeChunks, TimeWindow, Timestamp, TknnResult, Wal, WalFeed, WalSync,
};
pub use mbi_math::{Metric, Neighbor, OnlineStats, OrderedF32, TopK};

/// The graph-ANN substrate (vector store, NNDescent, HNSW, beam search).
pub use mbi_ann as ann;
/// The BSBF and SF baselines from §3.2 of the paper.
pub use mbi_baselines as baselines;
/// The MBI index implementation (re-exported at the root too).
pub use mbi_core as core;
/// Synthetic datasets, workloads, ground truth, recall.
pub use mbi_data as data;
/// The experiment harness (sweeps, operating points, reports).
pub use mbi_eval as eval;
/// Numeric foundations (metrics, top-k, ordered floats).
pub use mbi_math as math;
/// The multi-tenant network query service (HTTP/JSON + binary protocols).
pub use mbi_server as server;

pub use mbi_ann::{HnswParams, NnDescentParams, SearchParams, SearchStats, Segment, SegmentStore};
