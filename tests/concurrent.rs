//! Concurrency integration tests for [`mbi::ConcurrentMbi`] and
//! [`mbi::StreamingMbi`]: correctness of historical queries while ingestion
//! proceeds, convergence of the streaming engine to the synchronous index,
//! and clean builder-thread shutdown.

use mbi::{
    Backpressure, BlockGraph, ConcurrentMbi, EngineConfig, GraphBackend, MbiConfig, MbiIndex,
    Metric, NnDescentParams, StreamingMbi, TimeWindow,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn config() -> MbiConfig {
    MbiConfig::new(4, Metric::Euclidean)
        .with_leaf_size(64)
        .with_backend(GraphBackend::NnDescent(NnDescentParams {
            degree: 6,
            max_iters: 4,
            ..Default::default()
        }))
        .with_parallel_build(true)
}

fn vec_for(i: i64) -> [f32; 4] {
    let x = i as f32 * 0.01;
    [x.sin() * 10.0, x.cos() * 10.0, (3.0 * x).sin() * 10.0, x.fract()]
}

#[test]
fn historical_answers_are_stable_under_ingest() {
    let idx = ConcurrentMbi::new(config());
    for i in 0..512i64 {
        idx.insert(&vec_for(i), i).unwrap();
    }
    // Snapshot the exact answer for a frozen window.
    let frozen = TimeWindow::new(0, 512);
    let q = [5.0f32, -5.0, 2.0, 0.5];
    let baseline = idx.exact_query(&q, 10, frozen);

    let done = AtomicBool::new(false);
    let checks = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 512..3_000i64 {
                idx.insert(&vec_for(i), i).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..4 {
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    // Exact answers over the frozen window never change,
                    // no matter how much newer data lands.
                    let now = idx.exact_query(&q, 10, frozen);
                    assert_eq!(now, baseline);
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert!(checks.load(Ordering::Relaxed) > 0);
    assert_eq!(idx.len(), 3_000);
}

#[test]
fn approximate_queries_stay_in_window_under_ingest() {
    let idx = ConcurrentMbi::new(config());
    for i in 0..256i64 {
        idx.insert(&vec_for(i), i).unwrap();
    }
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 256..2_048i64 {
                idx.insert(&vec_for(i), i).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for worker in 0..3i64 {
            let idx = &idx;
            let done = &done;
            s.spawn(move || {
                let q = vec_for(worker * 37);
                let mut rounds = 0;
                while !done.load(Ordering::Acquire) || rounds < 3 {
                    let w = TimeWindow::new(worker * 10, 200 + worker * 10);
                    let res = idx.query(&q, 5, w);
                    assert_eq!(res.len(), 5);
                    for r in &res {
                        assert!(w.contains(r.timestamp));
                    }
                    rounds += 1;
                }
            });
        }
    });
}

/// Field-by-field equality of two indexes, down to the graph adjacency
/// lists — the "bit-identical" acceptance bar for the streaming engine.
fn assert_same_index(a: &MbiIndex, b: &MbiIndex) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.timestamps(), b.timestamps());
    assert_eq!(a.store().as_flat(), b.store().as_flat());
    assert_eq!(a.blocks().len(), b.blocks().len());
    for (x, y) in a.blocks().iter().zip(b.blocks()) {
        assert_eq!(x.rows, y.rows);
        assert_eq!(x.height, y.height);
        assert_eq!(x.start_ts, y.start_ts);
        assert_eq!(x.end_ts, y.end_ts);
        match (&x.graph, &y.graph) {
            (BlockGraph::Knn(g), BlockGraph::Knn(h)) => {
                assert_eq!(g.degree(), h.degree());
                assert_eq!(g.as_flat(), h.as_flat(), "graph differs in block {:?}", x.rows);
            }
            _ => panic!("graph backend mismatch in block {:?}", x.rows),
        }
    }
}

#[test]
fn streaming_queries_stay_correct_during_root_level_merges() {
    // Leaf size 64: sealing leaf 8 (row 512), 16 (row 1024), … triggers
    // root-level merge chains (heights up to 3 and 4). Readers hammer a
    // frozen committed window throughout and must always see the exact
    // pre-merge answer.
    let engine = StreamingMbi::with_engine_config(
        config(),
        EngineConfig::default().with_builder_threads(2).with_queue_depth(4),
    );
    for i in 0..512i64 {
        engine.insert(&vec_for(i), i).unwrap();
    }
    engine.flush();
    let frozen = TimeWindow::new(0, 512);
    let q = [5.0f32, -5.0, 2.0, 0.5];
    let baseline_exact = engine.exact_query(&q, 10, frozen);
    let baseline_approx = engine.query(&q, 10, frozen);

    let done = AtomicBool::new(false);
    let checks = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 512..2_048i64 {
                engine.insert(&vec_for(i), i).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    assert_eq!(engine.exact_query(&q, 10, frozen), baseline_exact);
                    // The frozen window's committed data never changes, so
                    // the approximate answer is stable too (same blocks,
                    // same graphs, deterministic search).
                    assert_eq!(engine.query(&q, 10, frozen), baseline_approx);
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert!(checks.load(Ordering::Relaxed) > 0);
    engine.flush();
    assert_eq!(engine.len(), 2_048);
    let stats = engine.stats();
    assert_eq!(stats.seals, 2_048 / 64);
    assert_eq!(stats.published_leaves, stats.seals);
    assert_eq!(stats.published_height, (2_048usize / 64).trailing_zeros());
}

#[test]
fn streaming_flush_converges_to_the_synchronous_index() {
    // 1000 rows = 15 sealed leaves + a 40-row tail; exercises out-of-order
    // background completion (multi-builder), rendezvous channels, and the
    // inline-build fallback. Every configuration must converge to the same
    // bits as the single-threaded synchronous build.
    let mut sync = MbiIndex::new(config());
    for i in 0..1_000i64 {
        sync.insert(&vec_for(i), i).unwrap();
    }
    sync.validate().expect("sync index valid");

    let engine_configs = [
        EngineConfig::default(),
        EngineConfig::default().with_builder_threads(3).with_queue_depth(8),
        EngineConfig::default()
            .with_builder_threads(2)
            .with_queue_depth(0)
            .with_backpressure(Backpressure::BuildInline),
        EngineConfig::default()
            .with_builder_threads(2)
            .with_queue_depth(1)
            .with_backpressure(Backpressure::BuildInline)
            .with_record_insert_latency(false),
    ];
    for ec in engine_configs {
        let engine = StreamingMbi::with_engine_config(config(), ec);
        for i in 0..1_000i64 {
            engine.insert(&vec_for(i), i).unwrap();
        }
        let index = engine.to_index();
        index.validate().expect("converged index valid");
        assert_same_index(&index, &sync);
    }
}

#[test]
fn dropping_the_engine_mid_build_joins_all_builders() {
    // Seal a burst of leaves and drop immediately: Drop must drain/join the
    // builder threads without deadlock or panic, repeatedly.
    for round in 0..4 {
        let engine = StreamingMbi::with_engine_config(
            config(),
            EngineConfig::default().with_builder_threads(1 + round % 3).with_queue_depth(16),
        );
        for i in 0..640i64 {
            engine.insert(&vec_for(i), i).unwrap();
        }
        assert_eq!(engine.len(), 640);
        drop(engine); // builds for up to 10 chains may still be in flight
    }
}

#[test]
fn published_snapshots_share_storage_with_predecessors() {
    // The O(leaf) publication claim, asserted structurally: a later snapshot
    // holds the *same allocations* for its common prefix — segments,
    // timestamp chunks, and blocks — so publication (and the sealing insert
    // that triggers it) never copies the sealed prefix, no matter how large
    // it has grown.
    use std::sync::Arc;
    let engine = StreamingMbi::new(config());
    for i in 0..128i64 {
        engine.insert(&vec_for(i), i).unwrap();
    }
    engine.flush();
    let early = engine.snapshot();
    assert_eq!(early.num_leaves(), 2);
    for i in 128..1_024i64 {
        engine.insert(&vec_for(i), i).unwrap();
    }
    engine.flush();
    let late = engine.snapshot();
    assert_eq!(late.num_leaves(), 16);
    for (a, b) in early.store().segments().iter().zip(late.store().segments()) {
        assert!(Arc::ptr_eq(a, b), "a later publication copied a sealed segment");
    }
    for (a, b) in early.times().chunks().iter().zip(late.times().chunks()) {
        assert!(Arc::ptr_eq(a, b), "a later publication copied a timestamp chunk");
    }
    for (a, b) in early.blocks().iter().zip(late.blocks()) {
        assert!(Arc::ptr_eq(a, b), "a later publication copied a block");
    }
    // Every publication took its latency sample, and the snapshot is sound.
    assert!(!engine.stats().publish_micros.is_empty());
    assert_eq!(late.validate(), Ok(()));
}

#[test]
fn streaming_snapshot_queries_match_the_synchronous_index() {
    // Bit-identical serving through the segmented snapshot path: after a
    // flush at a leaf boundary (empty tail), every query must return exactly
    // what the flat synchronous index returns — same ids, same distance
    // bits — across metrics of window, k, and query point.
    let mut sync = MbiIndex::new(config());
    let engine = StreamingMbi::with_engine_config(
        config(),
        EngineConfig::default().with_builder_threads(2).with_queue_depth(4),
    );
    for i in 0..1_024i64 {
        sync.insert(&vec_for(i), i).unwrap();
        engine.insert(&vec_for(i), i).unwrap();
    }
    engine.flush();
    for (qi, k, w) in [
        (3i64, 1usize, TimeWindow::all()),
        (100, 5, TimeWindow::new(0, 1_024)),
        (555, 10, TimeWindow::new(100, 900)),
        (901, 7, TimeWindow::new(512, 520)),
        (17, 3, TimeWindow::new(63, 65)),
    ] {
        let q = vec_for(qi * 13);
        assert_eq!(engine.query(&q, k, w), sync.query(&q, k, w), "q{qi} k{k}");
        assert_eq!(engine.exact_query(&q, k, w), sync.exact_query(&q, k, w), "exact q{qi} k{k}");
    }
}

#[test]
fn interleaved_inserts_from_one_writer_preserve_structure() {
    // The RwLock serialises writers; verify the final structure matches a
    // sequentially built index.
    let concurrent = ConcurrentMbi::new(config());
    let mut sequential = mbi::MbiIndex::new(config());
    for i in 0..640i64 {
        concurrent.insert(&vec_for(i), i).unwrap();
        sequential.insert(&vec_for(i), i).unwrap();
    }
    let inner = concurrent.into_inner();
    assert_eq!(inner.blocks().len(), sequential.blocks().len());
    let q = [1.0f32, 2.0, 3.0, 0.1];
    let w = TimeWindow::new(100, 600);
    assert_eq!(inner.query(&q, 8, w), sequential.query(&q, 8, w));
}
