//! Concurrency integration tests for [`mbi::ConcurrentMbi`]: correctness of
//! historical queries while ingestion proceeds, and multi-reader throughput
//! sanity.

use mbi::{ConcurrentMbi, GraphBackend, MbiConfig, Metric, NnDescentParams, TimeWindow};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn config() -> MbiConfig {
    MbiConfig::new(4, Metric::Euclidean)
        .with_leaf_size(64)
        .with_backend(GraphBackend::NnDescent(NnDescentParams {
            degree: 6,
            max_iters: 4,
            ..Default::default()
        }))
        .with_parallel_build(true)
}

fn vec_for(i: i64) -> [f32; 4] {
    let x = i as f32 * 0.01;
    [x.sin() * 10.0, x.cos() * 10.0, (3.0 * x).sin() * 10.0, x.fract()]
}

#[test]
fn historical_answers_are_stable_under_ingest() {
    let idx = ConcurrentMbi::new(config());
    for i in 0..512i64 {
        idx.insert(&vec_for(i), i).unwrap();
    }
    // Snapshot the exact answer for a frozen window.
    let frozen = TimeWindow::new(0, 512);
    let q = [5.0f32, -5.0, 2.0, 0.5];
    let baseline = idx.exact_query(&q, 10, frozen);

    let done = AtomicBool::new(false);
    let checks = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 512..3_000i64 {
                idx.insert(&vec_for(i), i).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..4 {
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    // Exact answers over the frozen window never change,
                    // no matter how much newer data lands.
                    let now = idx.exact_query(&q, 10, frozen);
                    assert_eq!(now, baseline);
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert!(checks.load(Ordering::Relaxed) > 0);
    assert_eq!(idx.len(), 3_000);
}

#[test]
fn approximate_queries_stay_in_window_under_ingest() {
    let idx = ConcurrentMbi::new(config());
    for i in 0..256i64 {
        idx.insert(&vec_for(i), i).unwrap();
    }
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 256..2_048i64 {
                idx.insert(&vec_for(i), i).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for worker in 0..3i64 {
            let idx = &idx;
            let done = &done;
            s.spawn(move || {
                let q = vec_for(worker * 37);
                let mut rounds = 0;
                while !done.load(Ordering::Acquire) || rounds < 3 {
                    let w = TimeWindow::new(worker * 10, 200 + worker * 10);
                    let res = idx.query(&q, 5, w);
                    assert_eq!(res.len(), 5);
                    for r in &res {
                        assert!(w.contains(r.timestamp));
                    }
                    rounds += 1;
                }
            });
        }
    });
}

#[test]
fn interleaved_inserts_from_one_writer_preserve_structure() {
    // The RwLock serialises writers; verify the final structure matches a
    // sequentially built index.
    let concurrent = ConcurrentMbi::new(config());
    let mut sequential = mbi::MbiIndex::new(config());
    for i in 0..640i64 {
        concurrent.insert(&vec_for(i), i).unwrap();
        sequential.insert(&vec_for(i), i).unwrap();
    }
    let inner = concurrent.into_inner();
    assert_eq!(inner.blocks().len(), sequential.blocks().len());
    let q = [1.0f32, 2.0, 3.0, 0.1];
    let w = TimeWindow::new(100, 600);
    assert_eq!(inner.query(&q, 8, w), sequential.query(&q, 8, w));
}
