//! Regression test for the disconnected-kNN-graph failure mode documented
//! in DESIGN.md ("Connectivity ring edge").
//!
//! With well-separated clusters, a pure kNN graph splits into islands and
//! Algorithm 2 cannot leave the entry point's cluster — recall collapses to
//! ~0 for queries whose answers live elsewhere. The ring edge added after
//! NNDescent guarantees strong connectivity; this test pins that behaviour
//! so a future "optimisation" cannot silently reintroduce the bug.

use mbi::data::DriftingMixture;
use mbi::{GraphBackend, MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams, TimeWindow};

#[test]
fn well_separated_clusters_remain_searchable() {
    // spread 0.02 → clusters are tiny dots far apart: the pathological case.
    let dataset = DriftingMixture {
        clusters: 12,
        spread: 0.02,
        drift: 0.0,
        ..DriftingMixture::new(16, 2024)
    }
    .generate("islands", Metric::Euclidean, 4_000, 24);

    let mut index = MbiIndex::new(
        MbiConfig::new(16, Metric::Euclidean)
            .with_leaf_size(512)
            .with_backend(GraphBackend::NnDescent(NnDescentParams {
                degree: 12,
                ..Default::default()
            }))
            .with_search(SearchParams::new(96, 1.25)),
    );
    for (v, t) in dataset.iter() {
        index.insert(v, t).unwrap();
    }

    // Every query must find its own cluster, whichever cluster the random
    // entry point lands in.
    let mut hits = 0usize;
    let mut total = 0usize;
    for qi in 0..dataset.test.len() {
        let q = dataset.test.get(qi);
        let w = TimeWindow::all();
        let approx = index.query(q, 10, w);
        let exact = index.exact_query(q, 10, w);
        let exact_ids: std::collections::HashSet<u32> = exact.iter().map(|r| r.id).collect();
        total += exact.len();
        hits += approx.iter().filter(|r| exact_ids.contains(&r.id)).count();
    }
    let recall = hits as f64 / total as f64;
    assert!(
        recall > 0.8,
        "recall {recall:.2} on separated clusters — ring-edge connectivity regressed?"
    );
}

#[test]
fn every_block_graph_is_strongly_connected() {
    use mbi::ann::Graph;

    let dataset = DriftingMixture { clusters: 8, spread: 0.02, ..DriftingMixture::new(8, 7) }
        .generate("conn", Metric::Euclidean, 1_500, 1);

    let mut index =
        MbiIndex::new(MbiConfig::new(8, Metric::Euclidean).with_leaf_size(200).with_backend(
            GraphBackend::NnDescent(NnDescentParams { degree: 6, ..Default::default() }),
        ));
    for (v, t) in dataset.iter() {
        index.insert(v, t).unwrap();
    }

    for (bi, block) in index.blocks().iter().enumerate() {
        let mbi::BlockGraph::Knn(g) = &block.graph else {
            panic!("expected knn graphs");
        };
        let n = g.node_count();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &nb in g.neighbors(v) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    count += 1;
                    queue.push_back(nb);
                }
            }
        }
        assert_eq!(count, n, "block {bi} graph is disconnected");
    }
}
