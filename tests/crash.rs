//! Crash-safety proof suite: durable engines must recover **exactly the
//! acked prefix** of their insert stream under every failure we can
//! simulate — process death without flush or checkpoint, torn final WAL
//! writes, bit flips and truncations of WAL segments and snapshot files,
//! and (with `RUSTFLAGS='--cfg failpoints'`) panics injected mid-build, IO
//! errors injected into the WAL writer, and panics on the publish path.
//!
//! The headline assertion, repeated throughout: after recovery,
//! `flush() + to_index().to_bytes()` is **bit-identical** to a synchronous
//! [`MbiIndex`] fed the same acked rows. Not "similar recall" — the same
//! graphs, the same bytes.
//!
//! The fault-injection half of the suite is compiled only under
//! `--cfg failpoints` (CI runs it as a dedicated job); the file-corruption
//! half runs in every configuration.

use mbi::{
    EngineConfig, MbiConfig, MbiError, MbiIndex, Metric, SearchParams, StreamingMbi, TimeWindow,
    WalSync,
};
use std::path::PathBuf;

const SNAPSHOT_FILE: &str = mbi::core::engine::SNAPSHOT_FILE;
const WAL_DIR: &str = mbi::core::engine::WAL_DIR;

fn config() -> MbiConfig {
    MbiConfig::new(3, Metric::Euclidean).with_leaf_size(16).with_search(SearchParams::new(32, 1.2))
}

fn row(i: usize) -> [f32; 3] {
    let x = i as f32;
    [(x * 0.31).sin() + 1.5, (x * 0.17).cos() + 1.5, 0.05 * x]
}

/// A synchronous index fed rows `0..n` — the recovery oracle.
fn sync_index(n: usize) -> MbiIndex {
    let mut idx = MbiIndex::new(config());
    for i in 0..n {
        idx.insert(&row(i), i as i64).unwrap();
    }
    idx
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbi_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The last (highest-numbered) WAL segment file in the engine dir.
fn last_wal_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> =
        std::fs::read_dir(dir.join(WAL_DIR)).unwrap().map(|e| e.unwrap().path()).collect();
    segs.sort();
    segs.pop().expect("wal directory is empty")
}

fn first_wal_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> =
        std::fs::read_dir(dir.join(WAL_DIR)).unwrap().map(|e| e.unwrap().path()).collect();
    segs.sort();
    segs.into_iter().next().expect("wal directory is empty")
}

fn assert_recovered_equals_sync(dir: &std::path::Path, n: usize) {
    let engine = StreamingMbi::recover(dir, EngineConfig::default()).unwrap();
    assert_eq!(engine.len(), n, "recovered row count");
    let recovered = engine.to_index();
    assert_eq!(recovered.validate(), Ok(()));
    assert_eq!(
        recovered.to_bytes(),
        sync_index(n).to_bytes(),
        "recovered index is bit-identical to a synchronous build of the acked prefix"
    );
}

#[test]
fn drop_without_checkpoint_recovers_every_acked_row() {
    let dir = temp_dir("no_checkpoint");
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..53usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        // Dropped mid-stream: builds may be queued, nothing checkpointed.
    }
    assert_recovered_equals_sync(&dir, 53);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_final_wal_record_is_truncated_not_fatal() {
    let dir = temp_dir("torn_tail");
    let n = 20usize; // leaf 16 → one rotated segment + 4 rows in the current
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..n {
            engine.insert(&row(i), i as i64).unwrap();
        }
    }
    // Simulate dying inside an append: half a record at the end of the
    // *last* segment. It was never acked, so recovery drops it silently.
    let seg = last_wal_segment(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x21, 0x00, 0x00, 0x00, 0xAB, 0xCD]); // len + partial crc
    std::fs::write(&seg, &bytes).unwrap();
    assert_recovered_equals_sync(&dir, n);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_recovery_then_new_inserts_share_one_log() {
    // After a torn-tail recovery the log is truncated back to the last
    // record boundary; new inserts must append cleanly from there.
    let dir = temp_dir("torn_then_grow");
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..10usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
    }
    let seg = last_wal_segment(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0xFF; 11]);
    std::fs::write(&seg, &bytes).unwrap();
    {
        let engine = StreamingMbi::recover(&dir, EngineConfig::default()).unwrap();
        assert_eq!(engine.len(), 10);
        for i in 10..40usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
    }
    assert_recovered_equals_sync(&dir, 40);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_bitflip_in_sealed_segment_is_wal_corrupt() {
    let dir = temp_dir("wal_flip");
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..40usize {
            // two sealed leaves → two rotated segments
            engine.insert(&row(i), i as i64).unwrap();
        }
    }
    // Flip a payload byte mid-record in the *first* (sealed) segment:
    // corruption before the final record is data loss, not a torn tail.
    let seg = first_wal_segment(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    let pos = bytes.len() / 2;
    bytes[pos] ^= 0x40;
    std::fs::write(&seg, &bytes).unwrap();
    match StreamingMbi::recover(&dir, EngineConfig::default()) {
        Err(MbiError::WalCorrupt { segment: 0, offset }) => {
            assert!(offset > 0, "offset points at the corrupt record");
        }
        other => panic!("expected WalCorrupt in segment 0, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_bitflip_is_rejected_at_recovery() {
    let dir = temp_dir("snap_flip");
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..48usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        engine.checkpoint().unwrap();
    }
    let snap_path = dir.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let pos = bytes.len() / 3;
    bytes[pos] ^= 0x04;
    std::fs::write(&snap_path, &bytes).unwrap();
    let err = StreamingMbi::recover(&dir, EngineConfig::default()).unwrap_err();
    assert!(
        matches!(err, MbiError::ChecksumMismatch { .. } | MbiError::Corrupt { .. }),
        "expected checksum/corruption error, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_is_rejected_at_recovery() {
    let dir = temp_dir("snap_trunc");
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..32usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        engine.checkpoint().unwrap();
    }
    let snap_path = dir.join(SNAPSHOT_FILE);
    let bytes = std::fs::read(&snap_path).unwrap();
    std::fs::write(&snap_path, &bytes[..bytes.len() - 7]).unwrap();
    assert!(StreamingMbi::recover(&dir, EngineConfig::default()).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_crash_replays_only_the_suffix() {
    let dir = temp_dir("suffix");
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..32usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        engine.checkpoint().unwrap(); // 2 leaves persisted, WAL pruned
        for i in 32..59usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        // crash: the 27 post-checkpoint rows exist only in the WAL
    }
    assert_recovered_equals_sync(&dir, 59);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_sync_always_survives_unsynced_drop_path() {
    // WalSync::Always fsyncs inside insert, so durability cannot depend on
    // the Drop-time sync. (We cannot SIGKILL ourselves in-process; the
    // fsync-before-ack ordering is the load-bearing property.)
    let dir = temp_dir("sync_always");
    {
        let engine = StreamingMbi::open(
            &dir,
            config(),
            EngineConfig::default().with_wal_sync(WalSync::Always),
        )
        .unwrap();
        for i in 0..21usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
    }
    assert_recovered_equals_sync(&dir, 21);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_engine_answers_windowed_queries_exactly() {
    let dir = temp_dir("queries");
    let n = 45usize;
    {
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..n {
            engine.insert(&row(i), i as i64).unwrap();
        }
    }
    let engine = StreamingMbi::recover(&dir, EngineConfig::default()).unwrap();
    let sync = sync_index(n);
    for (s, e) in [(0i64, n as i64), (5, 20), (30, 45), (44, 45)] {
        let w = TimeWindow::new(s, e);
        let q = row(7);
        assert_eq!(engine.exact_query(&q, 5, w), sync.exact_query(&q, 5, w), "window [{s},{e})");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tiered_checkpoint_crash_recovers_bit_identically_and_serves_cold() {
    use mbi::ColdIndex;
    // Cold-tier configuration: quantized scans plus a zero RAM budget (the
    // all-cold stress setting). The engine's checkpoint file is a v7
    // stream, so after a crash the same file must (a) recover the engine
    // bit-identically and (b) open directly as a ColdIndex whose answers
    // match the recovered snapshot.
    let dir = temp_dir("tiered");
    let cold_config = config().with_sq8_scan(true).with_ram_budget_bytes(0);
    let n = 64usize;
    {
        let engine = StreamingMbi::open(&dir, cold_config, EngineConfig::default()).unwrap();
        for i in 0..48usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        engine.checkpoint().unwrap();
        for i in 48..n {
            engine.insert(&row(i), i as i64).unwrap();
        }
        // crash: rows 48.. exist only in the WAL
    }
    // A kill mid-checkpoint can only leave a torn *temp* file behind — the
    // write-then-rename protocol never exposes a partial snapshot under the
    // live name. Recovery must shrug the leftover off.
    std::fs::write(dir.join(format!("{SNAPSHOT_FILE}.tmp")), b"torn mid-checkpoint").unwrap();
    let engine = StreamingMbi::recover(&dir, EngineConfig::default()).unwrap();
    assert_eq!(engine.len(), n, "recovered row count with tiering config");
    let recovered = engine.to_index();
    assert_eq!(recovered.validate(), Ok(()));
    let mut oracle = MbiIndex::new(cold_config);
    for i in 0..n {
        oracle.insert(&row(i), i as i64).unwrap();
    }
    assert_eq!(
        recovered.to_bytes(),
        oracle.to_bytes(),
        "recovery is bit-identical with sq8 + zero RAM budget enabled"
    );
    // Re-checkpoint, then serve the fresh checkpoint through the cold tier:
    // every answer must match the in-RAM snapshot that wrote it.
    engine.checkpoint().unwrap();
    let cold = ColdIndex::open(dir.join(SNAPSHOT_FILE)).unwrap();
    let snap = engine.snapshot();
    assert_eq!(cold.len(), snap.sealed_rows());
    for (s, e) in [(0i64, n as i64), (3, 40), (17, 18), (50, 64)] {
        let w = TimeWindow::new(s, e);
        let q = row(11);
        assert_eq!(
            cold.query(&q, 5, w).unwrap(),
            snap.query_with_params(&q, 5, w, &cold_config.search).results,
            "cold tier answer for window [{s},{e})"
        );
        assert_eq!(cold.exact_query(&q, 5, w).unwrap(), snap.exact_query(&q, 5, w));
    }
    let stats = cold.stats();
    assert_eq!(stats.bytes_resident, 0, "zero budget demotes everything: {stats:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn server_killed_mid_ingest_recovers_every_tenant_bit_identically() {
    use mbi::server::client::BinaryClient;
    use mbi::server::{Server, ServerConfig, TenantConfig};

    // Two durable tenants ingest over TCP, then the server "dies":
    // `ServerHandle::abort` leaks the engines so no Drop runs — no WAL
    // sync, no checkpoint, no builder join — the in-process stand-in for
    // SIGKILL. With `WalSync::Always` every *acked* insert was fsynced
    // before its response frame, so recovery owes us exactly the acked
    // rows, bit-identically, in each tenant's namespace.
    let base = temp_dir("server_abort");
    let dirs = [base.join("alpha"), base.join("beta")];
    let rows = [33usize, 51];
    {
        let server_config = ServerConfig::new("127.0.0.1:0", config())
            .with_engine(EngineConfig::default().with_wal_sync(WalSync::Always))
            .with_tenant(TenantConfig::durable("alpha", "tok-a", &dirs[0]))
            .with_tenant(TenantConfig::durable("beta", "tok-b", &dirs[1]));
        let handle = Server::start(server_config).unwrap();
        let addr = handle.addr();
        let mut alpha = BinaryClient::connect(addr, "alpha", "tok-a").unwrap();
        let mut beta = BinaryClient::connect(addr, "beta", "tok-b").unwrap();
        // Interleaved ingest so both WALs are mid-stream at the kill.
        for i in 0..rows[1] {
            if i < rows[0] {
                alpha.insert(&row(i), i as i64).unwrap();
            }
            beta.insert(&row(i + 100), i as i64).unwrap();
        }
        handle.abort(); // no drain, no checkpoint, engines leaked
    }
    for (dir, n, offset) in [(&dirs[0], rows[0], 0usize), (&dirs[1], rows[1], 100)] {
        let engine = StreamingMbi::recover(dir, EngineConfig::default()).unwrap();
        assert_eq!(engine.len(), n, "acked rows in {}", dir.display());
        let recovered = engine.to_index();
        assert_eq!(recovered.validate(), Ok(()));
        let mut oracle = MbiIndex::new(config());
        for i in 0..n {
            oracle.insert(&row(i + offset), i as i64).unwrap();
        }
        assert_eq!(
            recovered.to_bytes(),
            oracle.to_bytes(),
            "tenant at {} recovered bit-identically",
            dir.display()
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// Fault-injection half: compiled only with `RUSTFLAGS='--cfg failpoints'`.
/// The failpoint registry is process-global, so these tests serialise on a
/// mutex and disarm everything on entry and exit.
#[cfg(failpoints)]
mod failpoints {
    use super::*;
    use mbi::core::fail::{self, FailAction};
    use mbi::{EngineHealth, RetryPolicy};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner());
        fail::disarm_all();
        guard
    }

    /// Drops the guard *after* disarming, so a passing test never leaks an
    /// armed site into the next one.
    struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl Drop for Armed {
        fn drop(&mut self) {
            fail::disarm_all();
        }
    }

    #[test]
    fn builder_panic_is_retried_and_heals() {
        let _g = Armed(serial());
        // First build attempt of the first chain panics; the retry succeeds.
        fail::arm("builder::build", FailAction::Panic, 0, 1);
        let engine = StreamingMbi::with_engine_config(config(), EngineConfig::default());
        for i in 0..16usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        engine.flush();
        assert_eq!(engine.health(), EngineHealth::Healthy, "failure cleared after retry");
        let stats = engine.stats();
        assert_eq!(stats.build_panics, 1);
        assert_eq!(stats.published_leaves, 1);
        assert!(engine.failure_log().is_empty());
    }

    #[test]
    fn exhausted_retries_halt_without_wedging_inserts_or_queries() {
        let _g = Armed(serial());
        // Every attempt of the first chain panics: 1 + max_retries failures
        // halt the engine. Later rows keep flowing into the tail.
        fail::arm("builder::build", FailAction::Panic, 0, 100);
        let engine = StreamingMbi::with_engine_config(
            config(),
            EngineConfig::default().with_retry_policy(RetryPolicy {
                max_retries: 1,
                initial_backoff: std::time::Duration::from_millis(1),
                max_backoff: std::time::Duration::from_millis(2),
            }),
        );
        let mut sync = MbiIndex::new(config());
        for i in 0..40usize {
            engine.insert(&row(i), i as i64).unwrap();
            sync.insert(&row(i), i as i64).unwrap();
        }
        // flush() must return (not hang) on a halted engine.
        engine.flush();
        assert_eq!(engine.health(), EngineHealth::Halted);
        assert!(engine.stats().build_panics >= 2, "initial attempt + retry");
        assert_eq!(engine.stats().published_leaves, 0, "publication frozen");
        let log = engine.failure_log();
        assert!(log.iter().any(|l| l.contains("injected fault")), "{log:?}");

        // The regression the poisoning locks used to cause: inserts and
        // queries keep working after a builder panic, and answers stay
        // exact (the unpublished region is served from the tail).
        for i in 40..50usize {
            engine.insert(&row(i), i as i64).unwrap();
            sync.insert(&row(i), i as i64).unwrap();
        }
        let w = TimeWindow::new(0, 50);
        let q = row(23);
        assert_eq!(engine.exact_query(&q, 7, w), sync.exact_query(&q, 7, w));
        assert_eq!(engine.query(&q, 7, w), sync.exact_query(&q, 7, w), "tail scan is exact");
    }

    #[test]
    fn degraded_health_reports_the_failing_chain() {
        let _g = Armed(serial());
        // Fail the first chain's first two attempts with a long gap, so we
        // can observe Degraded between retries.
        fail::arm("builder::build", FailAction::Panic, 0, 2);
        let engine = StreamingMbi::with_engine_config(
            config(),
            EngineConfig::default().with_retry_policy(RetryPolicy {
                max_retries: 5,
                initial_backoff: std::time::Duration::from_millis(150),
                max_backoff: std::time::Duration::from_millis(300),
            }),
        );
        for i in 0..16usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        // Wait until the first failure registers (the build itself is fast;
        // the backoff window keeps the chain in `failing`).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match engine.health() {
                EngineHealth::Degraded { failed_chains } => {
                    assert_eq!(failed_chains, vec![0]);
                    break;
                }
                _ if std::time::Instant::now() > deadline => {
                    panic!("never observed Degraded; health={:?}", engine.health())
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        }
        engine.flush();
        // The failing entry is cleared just *after* the successful retry
        // publishes (which is what wakes flush), so poll for Healthy.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.health() != EngineHealth::Healthy {
            assert!(
                std::time::Instant::now() < deadline,
                "failure never cleared; health={:?}",
                engine.health()
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn injected_wal_io_error_rejects_insert_without_losing_state() {
        let _g = Armed(serial());
        let dir = temp_dir("wal_io_err");
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        for i in 0..5usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        fail::arm("wal::append", FailAction::IoError, 0, 1);
        let err = engine.insert(&row(5), 5).unwrap_err();
        assert!(matches!(err, MbiError::Io(_)), "{err:?}");
        assert_eq!(engine.len(), 5, "failed insert left no partial state");
        // The same row goes through once the fault clears, and recovery
        // sees exactly the acked stream.
        engine.insert(&row(5), 5).unwrap();
        for i in 6..23usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        drop(engine);
        assert_recovered_equals_sync(&dir, 23);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_short_write_is_rolled_back_and_rejected() {
        let _g = Armed(serial());
        let dir = temp_dir("wal_short");
        let engine = StreamingMbi::open(&dir, config(), EngineConfig::default()).unwrap();
        fail::arm("wal::append", FailAction::ShortWrite, 0, 1);
        assert!(engine.insert(&row(0), 0).is_err(), "short write must not ack");
        assert_eq!(engine.len(), 0);
        for i in 0..19usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        drop(engine);
        // The rolled-back partial record must not poison the log.
        assert_recovered_equals_sync(&dir, 19);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spawn_failure_falls_back_to_inline_builds() {
        let _g = Armed(serial());
        fail::arm("builder::spawn", FailAction::IoError, 0, 1);
        let engine = StreamingMbi::with_engine_config(config(), EngineConfig::default());
        let mut sync = MbiIndex::new(config());
        for i in 0..33usize {
            engine.insert(&row(i), i as i64).unwrap();
            sync.insert(&row(i), i as i64).unwrap();
        }
        engine.flush();
        let stats = engine.stats();
        assert_eq!(stats.spawn_failures, 1);
        assert_eq!(stats.inline_builds, 2, "both seals built inline");
        assert_eq!(stats.published_leaves, 2);
        assert_eq!(engine.to_index().to_bytes(), sync.to_bytes());
    }

    #[test]
    fn publish_path_panic_heals_on_retry() {
        let _g = Armed(serial());
        // Panic *after* staging and frontier advance, before the snapshot
        // swap — the nastiest spot. The retry must still publish.
        fail::arm("engine::publish", FailAction::Panic, 0, 1);
        let engine = StreamingMbi::with_engine_config(config(), EngineConfig::default());
        for i in 0..16usize {
            engine.insert(&row(i), i as i64).unwrap();
        }
        engine.flush();
        // The publication frontier advances *before* the injected panic, so
        // flush() can return while the retry is still re-swapping the
        // snapshot; poll for the heal.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.snapshot().num_leaves() != 1 || engine.health() != EngineHealth::Healthy {
            assert!(
                std::time::Instant::now() < deadline,
                "retry never published: health={:?}, leaves={}",
                engine.health(),
                engine.snapshot().num_leaves()
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(engine.stats().build_panics, 1);
        assert_eq!(engine.snapshot().validate(), Ok(()));
    }

    #[test]
    fn kill_mid_build_then_recover_is_bit_identical() {
        let _g = Armed(serial());
        let dir = temp_dir("kill_mid_build");
        let n = 37usize;
        {
            // Every build attempt dies: the engine halts with all chains
            // unbuilt — the closest in-process approximation of killing the
            // process mid-chain. All rows are in the WAL, none published.
            fail::arm("builder::build", FailAction::Panic, 0, 1000);
            let engine = StreamingMbi::open(
                &dir,
                config(),
                EngineConfig::default().with_retry_policy(RetryPolicy {
                    max_retries: 0,
                    initial_backoff: std::time::Duration::from_millis(1),
                    max_backoff: std::time::Duration::from_millis(1),
                }),
            )
            .unwrap();
            for i in 0..n {
                engine.insert(&row(i), i as i64).unwrap();
            }
            engine.flush();
            assert_eq!(engine.health(), EngineHealth::Halted);
            assert_eq!(engine.snapshot().num_leaves(), 0);
        }
        fail::disarm_all();
        // Recovery rebuilds every chain from the log, bit-identically.
        assert_recovered_equals_sync(&dir, n);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
