//! End-to-end pipeline tests: dataset generation → index construction →
//! TkNN queries → recall against exact ground truth, for all three methods
//! and both MBI backends.

use mbi::baselines::{BsbfIndex, SfConfig, SfIndex};
use mbi::data::{ground_truth, recall_vs_truth, windows_for_fraction, DriftingMixture};
use mbi::{
    GraphBackend, HnswParams, MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams,
    TimeWindow,
};

const K: usize = 10;

struct Fixture {
    dataset: mbi::data::Dataset,
    mbi: MbiIndex,
    bsbf: BsbfIndex,
    sf: SfIndex,
    search: SearchParams,
}

fn fixture(metric: Metric, backend: GraphBackend) -> Fixture {
    let dataset = DriftingMixture { drift: 0.8, ..DriftingMixture::new(24, 1234) }
        .generate("e2e", metric, 6_000, 20);

    let search = SearchParams::new(96, 1.25);
    let mut mbi = MbiIndex::new(
        MbiConfig::new(24, metric)
            .with_leaf_size(512)
            .with_tau(0.5)
            .with_backend(backend)
            .with_search(search)
            .with_parallel_build(true),
    );
    let mut bsbf = BsbfIndex::new(24, metric);
    let mut sf_cfg = SfConfig::new(24, metric);
    sf_cfg.graph = NnDescentParams { degree: 20, ..Default::default() };
    sf_cfg.search = search;
    let mut sf = SfIndex::new(sf_cfg);
    for (v, t) in dataset.iter() {
        mbi.insert(v, t).unwrap();
        bsbf.insert(v, t).unwrap();
        sf.insert(v, t).unwrap();
    }
    sf.rebuild();
    Fixture { dataset, mbi, bsbf, sf, search }
}

#[allow(clippy::type_complexity)]
fn workload(f: &Fixture, fraction: f64) -> (Vec<(Vec<f32>, TimeWindow)>, Vec<Vec<u32>>) {
    let windows = windows_for_fraction(&f.dataset.timestamps, fraction, 12, 99);
    let workload: Vec<(Vec<f32>, TimeWindow)> = windows
        .into_iter()
        .enumerate()
        .map(|(i, w)| (f.dataset.test.get(i % f.dataset.test.len()).to_vec(), w))
        .collect();
    let truth =
        ground_truth(&f.dataset.train, &f.dataset.timestamps, &workload, K, f.dataset.metric, 2);
    (workload, truth)
}

#[test]
fn mbi_reaches_high_recall_across_window_lengths() {
    let f = fixture(Metric::Euclidean, GraphBackend::default());
    for fraction in [0.02, 0.1, 0.3, 0.7, 0.95] {
        let (workload, truth) = workload(&f, fraction);
        let results: Vec<Vec<u32>> = workload
            .iter()
            .map(|(q, w)| {
                f.mbi
                    .query_with_params(q, K, *w, &f.search)
                    .results
                    .into_iter()
                    .map(|r| r.id)
                    .collect()
            })
            .collect();
        let recall = recall_vs_truth(&results, &truth, K);
        assert!(recall >= 0.9, "MBI recall {recall:.3} too low at fraction {fraction}");
    }
}

#[test]
fn mbi_with_hnsw_blocks_reaches_high_recall() {
    let f = fixture(
        Metric::Euclidean,
        GraphBackend::Hnsw(HnswParams { m: 12, ef_construction: 80, seed: 3 }),
    );
    let (workload, truth) = workload(&f, 0.3);
    let results: Vec<Vec<u32>> = workload
        .iter()
        .map(|(q, w)| {
            f.mbi.query_with_params(q, K, *w, &f.search).results.into_iter().map(|r| r.id).collect()
        })
        .collect();
    let recall = recall_vs_truth(&results, &truth, K);
    assert!(recall >= 0.9, "HNSW-backed recall {recall:.3}");
}

#[test]
fn angular_metric_end_to_end() {
    let f = fixture(Metric::Angular, GraphBackend::default());
    let (workload, truth) = workload(&f, 0.4);
    let results: Vec<Vec<u32>> = workload
        .iter()
        .map(|(q, w)| {
            f.mbi.query_with_params(q, K, *w, &f.search).results.into_iter().map(|r| r.id).collect()
        })
        .collect();
    let recall = recall_vs_truth(&results, &truth, K);
    assert!(recall >= 0.9, "angular recall {recall:.3}");
}

#[test]
fn bsbf_is_always_exact() {
    let f = fixture(Metric::Euclidean, GraphBackend::default());
    for fraction in [0.05, 0.5, 0.95] {
        let (workload, truth) = workload(&f, fraction);
        let results: Vec<Vec<u32>> = workload
            .iter()
            .map(|(q, w)| f.bsbf.query(q, K, *w).into_iter().map(|r| r.id).collect())
            .collect();
        assert_eq!(recall_vs_truth(&results, &truth, K), 1.0);
    }
}

#[test]
fn sf_reaches_high_recall_on_long_windows() {
    let f = fixture(Metric::Euclidean, GraphBackend::default());
    let (workload, truth) = workload(&f, 0.9);
    let results: Vec<Vec<u32>> = workload
        .iter()
        .map(|(q, w)| f.sf.query(q, K, *w).into_iter().map(|r| r.id).collect())
        .collect();
    let recall = recall_vs_truth(&results, &truth, K);
    assert!(recall >= 0.9, "SF long-window recall {recall:.3}");
}

#[test]
fn all_methods_return_only_in_window_results() {
    let f = fixture(Metric::Euclidean, GraphBackend::default());
    let w = TimeWindow::new(1_000, 2_500);
    let q = f.dataset.test.get(0);
    for ids in [
        f.mbi.query(q, K, w).iter().map(|r| r.timestamp).collect::<Vec<_>>(),
        f.bsbf.query(q, K, w).iter().map(|r| r.timestamp).collect::<Vec<_>>(),
        f.sf.query(q, K, w).iter().map(|r| r.timestamp).collect::<Vec<_>>(),
    ] {
        assert_eq!(ids.len(), K);
        for t in ids {
            assert!(w.contains(t), "timestamp {t} outside window");
        }
    }
}

#[test]
fn work_counters_reflect_regimes() {
    let f = fixture(Metric::Euclidean, GraphBackend::default());
    let q = f.dataset.test.get(1);

    // BSBF work grows with window length.
    let (_, short) = f.bsbf.query_with_stats(q, K, TimeWindow::new(0, 300));
    let (_, long) = f.bsbf.query_with_stats(q, K, TimeWindow::new(0, 5_700));
    assert!(long.scanned > 10 * short.scanned);

    // SF work shrinks with window length.
    let (_, sf_short) = f.sf.query_with_params(q, K, TimeWindow::new(0, 300), &f.search);
    let (_, sf_long) = f.sf.query_with_params(q, K, TimeWindow::new(0, 5_700), &f.search);
    assert!(
        sf_short.visited > sf_long.visited,
        "SF should visit more on short windows: {} vs {}",
        sf_short.visited,
        sf_long.visited
    );

    // MBI touches at most 2 blocks + tail when τ = 0.5 (Lemma 4.1).
    let out = f.mbi.query_with_params(q, K, TimeWindow::new(700, 4_200), &f.search);
    assert!(out.stats.blocks_searched <= 3, "{}", out.stats.blocks_searched);
}
