//! Property-based tests on MBI's structural invariants: postorder layout
//! (Algorithm 3), block selection (Algorithm 4), Lemma 4.1, and query
//! correctness relative to the exact scan.

use mbi::{GraphBackend, MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams, TimeWindow};
use proptest::prelude::*;

/// A cheap index: low dim, tiny degree, fast NNDescent, so proptest can
/// build hundreds of instances.
fn build_index(n: usize, leaf_size: usize, tau: f64) -> MbiIndex {
    let config = MbiConfig::new(2, Metric::Euclidean)
        .with_leaf_size(leaf_size)
        .with_tau(tau)
        .with_backend(GraphBackend::NnDescent(NnDescentParams {
            degree: 4,
            max_iters: 3,
            ..Default::default()
        }))
        .with_search(SearchParams::new(32, 1.3));
    let mut idx = MbiIndex::new(config);
    for i in 0..n {
        let x = i as f32;
        idx.insert(&[(x * 0.37).sin() * 20.0, (x * 0.89).cos() * 20.0], i as i64).unwrap();
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Structural invariants of the postorder block layout.
    #[test]
    fn postorder_structure_invariants(
        n in 1usize..400,
        leaf_size in 1usize..32,
    ) {
        let idx = build_index(n, leaf_size, 0.5);
        let blocks = idx.blocks();
        let num_leaves = n / leaf_size;
        prop_assert_eq!(idx.num_leaves(), num_leaves);
        prop_assert_eq!(idx.tail_rows().len(), n - num_leaves * leaf_size);

        // Number of blocks = sum over set bits b of (2^(b+1) − 1).
        let expected: usize = (0..usize::BITS)
            .filter(|b| num_leaves & (1 << b) != 0)
            .map(|b| (1usize << (b + 1)) - 1)
            .sum();
        prop_assert_eq!(blocks.len(), expected);

        for (i, b) in blocks.iter().enumerate() {
            // Block covers 2^height leaves exactly.
            prop_assert_eq!(b.rows.len(), (1usize << b.height) * leaf_size);
            // Timestamps match the covered rows (ts == row id here).
            prop_assert_eq!(b.start_ts, b.rows.start as i64);
            prop_assert_eq!(b.end_ts, b.rows.end as i64);
            // Children sit at the postorder offsets used by selection.
            if b.height > 0 {
                let right = &blocks[i - 1];
                let left = &blocks[i - (1usize << b.height)];
                prop_assert_eq!(right.height, b.height - 1);
                prop_assert_eq!(left.height, b.height - 1);
                prop_assert_eq!(left.rows.start, b.rows.start);
                prop_assert_eq!(right.rows.end, b.rows.end);
                prop_assert_eq!(left.rows.end, right.rows.start);
            }
        }
    }

    /// Selected blocks + tail cover the window's rows exactly once, at any τ.
    #[test]
    fn selection_covers_window_exactly_once(
        n in 1usize..300,
        leaf_size in 1usize..24,
        tau_pct in 1u32..=100,
        s_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let tau = tau_pct as f64 / 100.0;
        let idx = build_index(n, leaf_size, tau);
        let s = (s_frac * n as f64) as i64;
        let e = s + (len_frac * (n as f64 - s as f64)) as i64;
        let w = TimeWindow::new(s, e.max(s));
        let sel = idx.block_selection(w);

        // Count how many selected places cover each in-window row.
        let mut covered = vec![0u32; n];
        for &bi in &sel.blocks {
            let b = &idx.blocks()[bi];
            for r in b.rows.clone() {
                if w.contains(r as i64) {
                    covered[r] += 1;
                }
            }
        }
        if sel.tail {
            for r in idx.tail_rows() {
                if w.contains(r as i64) {
                    covered[r] += 1;
                }
            }
        }
        for (r, &c) in covered.iter().enumerate() {
            let expected = u32::from(w.contains(r as i64));
            prop_assert_eq!(c, expected, "row {} covered {} times (window {:?})", r, c, w);
        }
    }

    /// Lemma 4.1: on a complete tree with τ ≤ 0.5, at most two blocks.
    #[test]
    fn lemma_4_1_holds_on_complete_trees(
        leaves_pow in 1u32..6,
        tau_pct in 1u32..=50,
        s_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let leaf_size = 4usize;
        let n = (1usize << leaves_pow) * leaf_size;
        let idx = build_index(n, leaf_size, tau_pct as f64 / 100.0);
        prop_assert!(idx.tail_rows().is_empty());
        let s = (s_frac * n as f64) as i64;
        let e = s + (len_frac * (n as f64 - s as f64)) as i64;
        let sel = idx.block_selection(TimeWindow::new(s, e.max(s)));
        prop_assert!(
            sel.blocks.len() <= 2,
            "τ={} window [{}, {}) selected {:?}",
            tau_pct as f64 / 100.0, s, e, sel.blocks
        );
    }

    /// Approximate query results are always in-window, sorted, deduplicated,
    /// and no better than the exact answer (distance-wise, element by
    /// element).
    #[test]
    fn query_results_are_sound(
        n in 10usize..300,
        leaf_size in 2usize..24,
        k in 1usize..8,
        s_frac in 0.0f64..0.9,
    ) {
        let idx = build_index(n, leaf_size, 0.5);
        let s = (s_frac * n as f64) as i64;
        let e = ((s + 20).min(n as i64)).max(s);
        let w = TimeWindow::new(s, e);
        let q = [3.0f32, -2.0];
        let got = idx.query(&q, k, w);
        let exact = idx.exact_query(&q, k, w);

        prop_assert!(got.len() <= k);
        prop_assert!(got.len() <= exact.len());
        let mut seen = std::collections::HashSet::new();
        for (i, r) in got.iter().enumerate() {
            prop_assert!(w.contains(r.timestamp));
            prop_assert!(seen.insert(r.id), "duplicate id {}", r.id);
            if i > 0 {
                prop_assert!(got[i - 1].dist <= r.dist);
            }
            // The i-th approximate answer can't beat the i-th exact answer.
            prop_assert!(r.dist >= exact[i].dist - 1e-5);
        }
    }

    /// Exact query equals a naive filter-and-sort reference.
    #[test]
    fn exact_query_matches_naive_reference(
        n in 1usize..200,
        k in 1usize..6,
        s in 0i64..200,
        len in 0i64..200,
    ) {
        let idx = build_index(n, 8, 0.5);
        let w = TimeWindow::new(s.min(n as i64), (s + len).min(n as i64).max(s.min(n as i64)));
        let q = [7.0f32, 7.0];
        let got: Vec<u32> = idx.exact_query(&q, k, w).into_iter().map(|r| r.id).collect();

        let mut reference: Vec<(f32, u32)> = (0..n as u32)
            .filter(|&i| w.contains(i as i64))
            .map(|i| (Metric::Euclidean.distance(&q, idx.vector_of(i)), i))
            .collect();
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        reference.truncate(k);
        let expect: Vec<u32> = reference.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(got, expect);
    }
}
