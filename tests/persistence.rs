//! Persistence integration tests: save/load roundtrips at realistic scale,
//! and fuzzing malformed inputs (truncations and bit flips must produce
//! errors, never panics or silently wrong indexes).

use mbi::{
    GraphBackend, HnswParams, MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams,
    TimeWindow,
};

fn build(backend: GraphBackend, n: usize) -> MbiIndex {
    let config = MbiConfig::new(8, Metric::Angular)
        .with_leaf_size(128)
        .with_tau(0.4)
        .with_backend(backend)
        .with_search(SearchParams::new(48, 1.2))
        .with_parallel_build(true);
    let mut idx = MbiIndex::new(config);
    for i in 0..n {
        let x = i as f32 * 0.05;
        let v = [
            x.sin(),
            x.cos(),
            (2.0 * x).sin(),
            (2.0 * x).cos(),
            (0.5 * x).sin(),
            (0.5 * x).cos(),
            1.0,
            x.fract() + 0.1,
        ];
        idx.insert(&v, (i as i64) * 3 + 1).unwrap();
    }
    idx
}

fn same_behaviour(a: &MbiIndex, b: &MbiIndex) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.num_leaves(), b.num_leaves());
    assert_eq!(a.blocks().len(), b.blocks().len());
    assert_eq!(a.index_memory_bytes() > 0, b.index_memory_bytes() > 0);
    let q = [0.3f32, -0.7, 0.2, 0.9, 0.5, -0.5, 1.0, 0.4];
    for (s, e) in [(0i64, 3000i64), (50, 500), (1200, 1300), (2900, 3100)] {
        let w = TimeWindow::new(s, e);
        assert_eq!(a.query(&q, 7, w), b.query(&q, 7, w), "window [{s},{e})");
        assert_eq!(a.exact_query(&q, 7, w), b.exact_query(&q, 7, w));
    }
}

#[test]
fn roundtrip_nndescent_1000() {
    let idx =
        build(GraphBackend::NnDescent(NnDescentParams { degree: 10, ..Default::default() }), 1000);
    let loaded = MbiIndex::from_bytes(idx.to_bytes()).unwrap();
    same_behaviour(&idx, &loaded);
}

#[test]
fn roundtrip_hnsw_1000() {
    let idx = build(GraphBackend::Hnsw(HnswParams { m: 8, ef_construction: 48, seed: 9 }), 1000);
    let loaded = MbiIndex::from_bytes(idx.to_bytes()).unwrap();
    same_behaviour(&idx, &loaded);
}

#[test]
fn roundtrip_with_tail_and_partial_tree() {
    // 777 rows with leaf 128 → 6 leaves (binary 110: two subtrees) + tail.
    let idx = build(GraphBackend::default(), 777);
    assert!(!idx.tail_rows().is_empty());
    let loaded = MbiIndex::from_bytes(idx.to_bytes()).unwrap();
    same_behaviour(&idx, &loaded);
    // The loaded index keeps accepting inserts.
    let mut loaded = loaded;
    let last_ts = loaded.timestamps()[loaded.len() - 1];
    loaded.insert(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.5], last_ts + 1).unwrap();
    assert_eq!(loaded.len(), 778);
}

#[test]
fn truncation_fuzz_never_panics() {
    let idx = build(GraphBackend::default(), 300);
    let bytes = idx.to_bytes();
    // Deterministic pseudo-random cut points across the whole stream.
    let mut x = 0x12345678u64;
    for _ in 0..200 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let cut = (x % bytes.len() as u64) as usize;
        let res = MbiIndex::from_bytes(bytes.slice(0..cut));
        assert!(res.is_err(), "truncation at {cut} accepted");
    }
}

#[test]
fn bitflip_fuzz_never_panics() {
    let idx = build(GraphBackend::default(), 200);
    let bytes = idx.to_bytes().to_vec();
    let mut x = 0xDEADBEEFu64;
    for _ in 0..300 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pos = (x % bytes.len() as u64) as usize;
        let bit = 1u8 << (x >> 40 & 7);
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= bit;
        // v5 streams are section-checksummed: *every* flip — including one
        // in the vector payload, which pre-v5 loaded as a silently
        // different index — must surface as an error, never a panic.
        let res = MbiIndex::from_bytes(bytes::Bytes::from(corrupted));
        assert!(res.is_err(), "flip at byte {pos} (bit mask {bit:#04x}) accepted");
    }
}

#[test]
fn loaded_index_preserves_config() {
    let idx =
        build(GraphBackend::NnDescent(NnDescentParams { degree: 10, ..Default::default() }), 500);
    let loaded = MbiIndex::from_bytes(idx.to_bytes()).unwrap();
    assert_eq!(loaded.config().leaf_size, 128);
    assert_eq!(loaded.config().tau, 0.4);
    assert_eq!(loaded.config().metric, Metric::Angular);
    assert_eq!(loaded.config().search.max_candidates, 48);
    assert!(loaded.config().parallel_build);
}
