//! Replication fault suite: a follower fed through the WAL-shipping layer
//! must end **bit-identical** to its leader after every link/process fault
//! we can simulate — disconnects mid-batch, leader death before the
//! follower's ack lands, follower death mid-replay and mid-append, tampered
//! records (divergence), and retention-hold eviction under `prune`.
//!
//! The headline assertion, shared with `tests/crash.rs`: after recovery and
//! catch-up, `to_index().to_bytes()` on the follower equals the leader's.
//! Not "same row count" — the same graphs, the same bytes.
//!
//! The injected-fault half (feed I/O errors, panics mid-replay) is compiled
//! only under `RUSTFLAGS='--cfg failpoints'`; everything else runs in every
//! configuration.

use mbi::core::engine::WAL_DIR;
use mbi::core::{ReplEvent, Replica, WalFeed};
use mbi::{EngineConfig, MbiConfig, MbiError, Metric, SearchParams, StreamingMbi, TimeWindow};
use std::path::{Path, PathBuf};

fn config() -> MbiConfig {
    MbiConfig::new(3, Metric::Euclidean).with_leaf_size(16).with_search(SearchParams::new(32, 1.2))
}

fn row(i: usize) -> [f32; 3] {
    let x = i as f32;
    [(x * 0.31).sin() + 1.5, (x * 0.17).cos() + 1.5, 0.05 * x]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbi_replcrash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable leader holding rows `0..n`.
fn leader(dir: &Path, n: usize) -> StreamingMbi {
    let engine = StreamingMbi::open(dir, config(), EngineConfig::default()).unwrap();
    for i in 0..n {
        engine.insert(&row(i), i as i64).unwrap();
    }
    engine
}

/// Pumps the feed into the replica until it reports caught-up.
fn drain(feed: &mut WalFeed, replica: &Replica) -> Result<(), MbiError> {
    loop {
        let events = feed.next_batch(64)?;
        if events.is_empty() {
            return Ok(());
        }
        for event in &events {
            replica.apply(event)?;
        }
    }
}

fn assert_identical(leader: &StreamingMbi, replica: &Replica) {
    leader.flush();
    replica.engine().flush();
    assert_eq!(leader.len(), replica.engine().len(), "row counts match");
    assert_eq!(
        leader.to_index().to_bytes(),
        replica.engine().to_index().to_bytes(),
        "follower is bit-identical to the leader"
    );
}

/// Scenario 1 — **disconnect mid-record**: the link dies partway through a
/// segment. A fresh feed from the follower's own row count (its only
/// cursor) resumes without loss or duplication.
#[test]
fn disconnect_mid_record_resumes_from_follower_cursor() {
    let ldir = temp_dir("disc_leader");
    let fdir = temp_dir("disc_follower");
    let leader = leader(&ldir, 40);
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();

    // First connection delivers a few small batches, then "drops".
    let mut feed = WalFeed::for_engine(&leader, 0).unwrap();
    for _ in 0..3 {
        for event in feed.next_batch(7).unwrap() {
            replica.apply(&event).unwrap();
        }
    }
    let applied = replica.next_row();
    assert!(applied > 0 && applied < 40, "mid-stream disconnect, got {applied}");
    drop(feed); // the disconnect

    // Reconnect: the follower's row count seeds the new cursor.
    let mut feed = WalFeed::for_engine(&leader, replica.next_row()).unwrap();
    drain(&mut feed, &replica).unwrap();
    assert_identical(&leader, &replica);

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// Scenario 2 — **leader crash before the ack**: the leader dies after
/// shipping a segment but before recording how far the follower got. On
/// recovery it re-serves from the segment boundary; the follower skips the
/// overlap as duplicates and converges bit-identically.
#[test]
fn leader_crash_before_ack_resends_overlap_harmlessly() {
    let ldir = temp_dir("preack_leader");
    let fdir = temp_dir("preack_follower");
    let engine = leader(&ldir, 25);
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();
    let mut feed = WalFeed::for_engine(&engine, 0).unwrap();
    for event in feed.next_batch(20).unwrap() {
        replica.apply(&event).unwrap();
    }
    // (the 20-event batch counts seals too, so 17..=19 records landed)
    let follower_at = replica.next_row();
    assert!(follower_at > 16 && follower_at < 25, "mid-stream crash point, got {follower_at}");

    // Leader dies without flush/checkpoint (no Drop runs)…
    std::mem::forget(engine);
    // …and recovers from its own log.
    let recovered = StreamingMbi::recover(&ldir, EngineConfig::default()).unwrap();
    assert_eq!(recovered.len(), 25, "leader recovery sees every acked row");

    // Its stale view of the follower restarts the stream at the last
    // segment boundary — before rows the follower already holds.
    let resend_from = follower_at - follower_at % 16;
    let mut feed = WalFeed::for_engine(&recovered, resend_from).unwrap();
    drain(&mut feed, &replica).unwrap();
    let (duplicates, _, _) = replica.apply_counters();
    assert_eq!(duplicates, follower_at - resend_from, "overlap was skipped, not re-applied");
    assert_identical(&recovered, &replica);

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// Scenario 3 — **follower crash mid-append** (the torn-frame aftermath on
/// disk): the follower dies while writing a record, leaving half of it at
/// the end of its own WAL. Recovery truncates the torn bytes and
/// replication resumes from the durable prefix.
#[test]
fn follower_crash_mid_append_truncates_and_resumes() {
    let ldir = temp_dir("torn_leader");
    let fdir = temp_dir("torn_follower");
    let engine = leader(&ldir, 20);
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();
    let mut feed = WalFeed::for_engine(&engine, 0).unwrap();
    drain(&mut feed, &replica).unwrap();

    // Crash: leak the replica (no Drop, no checkpoint) with half a record
    // appended to its newest WAL segment — died mid-write.
    let wal_dir = replica.engine().durable_dir().unwrap().join(WAL_DIR);
    std::mem::forget(replica);
    let mut segments: Vec<PathBuf> =
        std::fs::read_dir(&wal_dir).unwrap().map(|e| e.unwrap().path()).collect();
    segments.sort();
    let tail = segments.pop().expect("follower wrote WAL segments");
    let mut bytes = std::fs::read(&tail).unwrap();
    bytes.extend_from_slice(&[0x21, 0x00, 0x00, 0x00, 0xAB, 0xCD]); // len + partial crc
    std::fs::write(&tail, &bytes).unwrap();

    // Reopen: the torn record was never acked upstream, so dropping it is
    // correct — and the resumed stream re-delivers from the cursor.
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();
    assert_eq!(replica.next_row(), 20, "torn bytes dropped, durable prefix kept");
    for i in 20..40 {
        engine.insert(&row(i), i as i64).unwrap();
    }
    let mut feed = WalFeed::for_engine(&engine, replica.next_row()).unwrap();
    drain(&mut feed, &replica).unwrap();
    assert_identical(&engine, &replica);

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// Scenario 4 — **diverged segment**: a record is corrupted in flight (or
/// by a buggy proxy); both copies are internally consistent but differ.
/// The seal handoff catches it and names the segment — never silent drift.
#[test]
fn in_flight_corruption_is_reported_as_divergence_at_the_seal() {
    let ldir = temp_dir("div_leader");
    let fdir = temp_dir("div_follower");
    let engine = leader(&ldir, 40);
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();
    let mut feed = WalFeed::for_engine(&engine, 0).unwrap();
    let mut divergence = None;
    'stream: loop {
        let events = feed.next_batch(64).unwrap();
        if events.is_empty() {
            break;
        }
        for mut event in events {
            if let ReplEvent::Record { row: 20, vector, .. } = &mut event {
                vector[0] += 0.5; // the in-flight flip
            }
            match replica.apply(&event) {
                Ok(()) => {}
                Err(e @ MbiError::ReplicaDiverged { .. }) => {
                    divergence = Some(e);
                    break 'stream;
                }
                Err(e) => panic!("unexpected apply error: {e}"),
            }
        }
    }
    match divergence {
        Some(MbiError::ReplicaDiverged { segment, .. }) => {
            assert_eq!(segment, 16, "row 20 lives in the segment starting at row 16");
        }
        other => panic!("divergence was not detected: {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// Scenario 5 — **prune under the tail**: a registered retention hold pins
/// WAL segments a slow follower still needs across `checkpoint`, so a
/// lagging-but-live follower can always resume.
#[test]
fn retention_hold_keeps_segments_a_follower_still_needs() {
    let ldir = temp_dir("hold_leader");
    let fdir = temp_dir("hold_follower");
    let engine = leader(&ldir, 60);
    engine.set_replica_hold("follower-1", 0);
    engine.checkpoint().unwrap();

    // Despite the checkpoint, the feed can still serve from row 0.
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();
    let mut feed = WalFeed::for_engine(&engine, 0).unwrap();
    drain(&mut feed, &replica).unwrap();
    assert_identical(&engine, &replica);
    // The follower's own queries see the replicated data.
    let hit = replica.engine().query(&row(3), 1, TimeWindow::all());
    assert_eq!(hit[0].dist, 0.0);

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// Scenario 5b — the other half of prune-under-tail: a follower lagging
/// past the configured cap is **evicted** (prune proceeds) and its next
/// read is a terminal "re-seed" error, not a hang or silent gap.
#[test]
fn lag_cap_evicts_hopeless_follower_instead_of_wedging_prune() {
    let ldir = temp_dir("evict_leader");
    let engine = {
        let e =
            StreamingMbi::open(&ldir, config(), EngineConfig::default().with_replica_lag_cap(32))
                .unwrap();
        for i in 0..100usize {
            e.insert(&row(i), i as i64).unwrap();
        }
        e
    };
    engine.set_replica_hold("doomed", 0);
    engine.checkpoint().unwrap(); // lag 100 > cap 32 → evict, then prune

    assert_eq!(engine.take_evicted_replica_holds(), vec!["doomed".to_string()]);
    assert!(engine.replica_holds().is_empty(), "evicted hold is gone");
    let mut feed = WalFeed::for_engine(&engine, 0).unwrap();
    let err = feed.next_batch(8).expect_err("pruned cursor must error, not serve a gap");
    assert!(err.to_string().contains("re-seeded"), "terminal re-seed error, got: {err}");

    let _ = std::fs::remove_dir_all(&ldir);
}

/// Scenario 6 (injected) — **feed I/O error**: a transient read failure on
/// the leader surfaces as an error (the link layer reconnects), and the
/// retried feed continues from the same cursor.
#[cfg(failpoints)]
#[test]
fn injected_feed_io_error_is_transient_and_resumable() {
    use mbi::core::fail;
    let ldir = temp_dir("feedio_leader");
    let fdir = temp_dir("feedio_follower");
    let engine = leader(&ldir, 40);
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();
    let mut feed = WalFeed::for_engine(&engine, 0).unwrap();

    fail::arm("repl::feed", fail::FailAction::IoError, 1, 1);
    for event in feed.next_batch(8).unwrap() {
        replica.apply(&event).unwrap();
    }
    let err = feed.next_batch(8).expect_err("armed site must fire");
    assert!(err.to_string().contains(fail::INJECTED_MSG), "{err}");
    fail::disarm("repl::feed");

    // The cursor did not advance through the failure; a plain retry of the
    // same feed object drains the rest.
    drain(&mut feed, &replica).unwrap();
    assert_identical(&engine, &replica);

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// Scenario 7 (injected) — **follower crash mid-replay**: a panic while
/// applying a record kills the follower process. Reopening the directory
/// recovers the durable prefix and the stream resumes to bit-identity.
#[cfg(failpoints)]
#[test]
fn injected_follower_panic_mid_replay_recovers_bit_identical() {
    use mbi::core::fail;
    let ldir = temp_dir("fpanic_leader");
    let fdir = temp_dir("fpanic_follower");
    let engine = leader(&ldir, 48);
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();

    // The 23rd record application panics.
    fail::arm("repl::apply", fail::FailAction::Panic, 22, 1);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut feed = WalFeed::for_engine(&engine, 0).unwrap();
        loop {
            let events = feed.next_batch(64).unwrap();
            if events.is_empty() {
                return;
            }
            for event in &events {
                replica.apply(event).unwrap();
            }
        }
    }));
    assert!(crashed.is_err(), "armed panic site must fire");
    fail::disarm_all();

    // Process death: no Drop, no checkpoint, builders leaked.
    let durable = replica.next_row();
    std::mem::forget(replica);

    // Reopen and resume from the recovered row count.
    let replica = Replica::open(&fdir, config(), EngineConfig::default()).unwrap();
    assert!(replica.next_row() <= durable, "recovery never invents rows");
    let mut feed = WalFeed::for_engine(&engine, replica.next_row()).unwrap();
    drain(&mut feed, &replica).unwrap();
    assert_identical(&engine, &replica);

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}
