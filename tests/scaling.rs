//! Deterministic complexity-trend tests: the work *counters* (distance
//! evaluations, scanned rows, visited vertices) are exact and reproducible
//! for fixed seeds, so the asymptotic claims of §3.2 and §4.4 can be
//! asserted without timing anything.

use mbi::baselines::{BsbfIndex, SfConfig, SfIndex};
use mbi::data::DriftingMixture;
use mbi::{GraphBackend, MbiConfig, MbiIndex, Metric, NnDescentParams, SearchParams, TimeWindow};

const K: usize = 10;

fn dataset(n: usize) -> mbi::data::Dataset {
    DriftingMixture { drift: 0.5, ..DriftingMixture::new(16, 777) }.generate(
        "scaling",
        Metric::Euclidean,
        n,
        4,
    )
}

fn build_all(d: &mbi::data::Dataset) -> (MbiIndex, BsbfIndex, SfIndex) {
    let nd = NnDescentParams { degree: 12, ..Default::default() };
    let mut mbi = MbiIndex::new(
        MbiConfig::new(16, Metric::Euclidean)
            .with_leaf_size(1024)
            .with_tau(0.5)
            .with_backend(GraphBackend::NnDescent(nd))
            .with_search(SearchParams::new(64, 1.15)),
    );
    let mut bsbf = BsbfIndex::new(16, Metric::Euclidean);
    let mut sf_cfg = SfConfig::new(16, Metric::Euclidean);
    sf_cfg.graph = nd;
    sf_cfg.search = SearchParams::new(64, 1.15);
    let mut sf = SfIndex::new(sf_cfg);
    for (v, t) in d.iter() {
        mbi.insert(v, t).unwrap();
        bsbf.insert(v, t).unwrap();
        sf.insert(v, t).unwrap();
    }
    sf.rebuild();
    (mbi, bsbf, sf)
}

/// Work per query by window fraction; averaged over several windows.
fn mean_dist_evals(run: impl Fn(TimeWindow) -> u64, n: i64, fraction: f64) -> f64 {
    let len = (n as f64 * fraction) as i64;
    let offsets = [0i64, n / 7, n / 3, n / 2];
    let mut total = 0u64;
    let mut count = 0u64;
    for off in offsets {
        let s = off.min(n - len);
        total += run(TimeWindow::new(s, s + len));
        count += 1;
    }
    total as f64 / count as f64
}

#[test]
fn bsbf_work_is_linear_in_window() {
    let d = dataset(16_384);
    let (_, bsbf, _) = build_all(&d);
    let q = d.test.get(0).to_vec();
    let n = d.len() as i64;
    let w = |frac: f64| mean_dist_evals(|win| bsbf.query_with_stats(&q, K, win).1.scanned, n, frac);
    let at_5 = w(0.05);
    let at_80 = w(0.80);
    // 16× more window ⇒ ~16× more scanning (tolerate rounding).
    let ratio = at_80 / at_5;
    assert!((12.0..20.0).contains(&ratio), "scan ratio {ratio} (expected ≈ 16)");
}

#[test]
fn sf_work_explodes_on_short_windows() {
    let d = dataset(16_384);
    let (_, _, sf) = build_all(&d);
    let q = d.test.get(1).to_vec();
    let n = d.len() as i64;
    let w = |frac: f64| {
        mean_dist_evals(
            |win| sf.query_with_params(&q, K, win, &SearchParams::new(64, 1.15)).1.dist_evals,
            n,
            frac,
        )
    };
    let short = w(0.02);
    let long = w(0.90);
    assert!(
        short > 4.0 * long,
        "SF short-window work {short} should dwarf long-window work {long}"
    );
}

#[test]
fn mbi_work_is_bounded_across_window_lengths() {
    let d = dataset(16_384);
    let (mbi, bsbf, sf) = build_all(&d);
    let q = d.test.get(2).to_vec();
    let n = d.len() as i64;
    let params = SearchParams::new(64, 1.15);

    let mbi_work = |frac: f64| {
        mean_dist_evals(
            |win| {
                let out = mbi.query_with_params(&q, K, win, &params);
                out.stats.dist_evals + out.stats.scanned
            },
            n,
            frac,
        )
    };
    let bsbf_work =
        |frac: f64| mean_dist_evals(|win| bsbf.query_with_stats(&q, K, win).1.scanned, n, frac);
    let sf_work = |frac: f64| {
        mean_dist_evals(|win| sf.query_with_params(&q, K, win, &params).1.dist_evals, n, frac)
    };

    // MBI must be within a constant factor of the *better* baseline at both
    // extremes — that is the paper's core claim (challenge C1).
    let frac_short = 0.02;
    let frac_long = 0.90;
    assert!(
        mbi_work(frac_short) <= 3.0 * bsbf_work(frac_short).min(sf_work(frac_short)),
        "short: MBI {} vs best baseline {}",
        mbi_work(frac_short),
        bsbf_work(frac_short).min(sf_work(frac_short))
    );
    assert!(
        mbi_work(frac_long) <= 3.0 * bsbf_work(frac_long).min(sf_work(frac_long)),
        "long: MBI {} vs best baseline {}",
        mbi_work(frac_long),
        bsbf_work(frac_long).min(sf_work(frac_long))
    );
    // And it must beat BSBF by a wide margin on long windows.
    assert!(mbi_work(frac_long) * 4.0 < bsbf_work(frac_long));
}

#[test]
fn mbi_blocks_searched_obeys_lemma_4_1_plus_tail() {
    let d = dataset(8_192); // 8 leaves of 1024 → complete tree
    let (mbi, _, _) = build_all(&d);
    assert!(mbi.tail_rows().is_empty());
    let q = d.test.get(3).to_vec();
    let n = d.len() as i64;
    for frac in [0.01, 0.1, 0.33, 0.66, 0.95] {
        let len = (n as f64 * frac) as i64;
        for off in [0i64, n / 5, n / 2] {
            let s = off.min(n - len);
            let out = mbi.query_with_params(
                &q,
                K,
                TimeWindow::new(s, s + len),
                &SearchParams::new(64, 1.15),
            );
            assert!(
                out.stats.blocks_searched <= 2,
                "frac {frac} offset {off}: {} blocks",
                out.stats.blocks_searched
            );
        }
    }
}

#[test]
fn index_size_grows_superlinearly_but_gently() {
    // §4.4.1: doubling the data roughly doubles the per-level cost and adds
    // one level — the MBI/SF size ratio grows by about one level's worth.
    let sizes = [2_048usize, 4_096, 8_192, 16_384];
    let mut ratios = Vec::new();
    for &n in &sizes {
        let d = dataset(n);
        let (mbi, _, sf) = build_all(&d);
        ratios.push(mbi.index_memory_bytes() as f64 / sf.index_memory_bytes() as f64);
    }
    for w in ratios.windows(2) {
        assert!(w[1] > w[0], "MBI/SF size ratio should grow with data: {ratios:?}");
    }
    // But by less than a full doubling per step (it's a log factor).
    for w in ratios.windows(2) {
        assert!(w[1] < w[0] * 2.0, "ratio growth too steep: {ratios:?}");
    }
}

#[test]
fn amortized_insert_cost_grows_sublinearly() {
    // §4.4.2: amortised insertion is O(n^0.14 log n) — doubling the data
    // must far less than double the *per-vector* build work. Proxy: total
    // build time is hard to count deterministically, so compare index bytes
    // per vector (graph work tracks graph size for fixed degree).
    let small = dataset(4_096);
    let big = dataset(16_384);
    let (mbi_small, _, _) = build_all(&small);
    let (mbi_big, _, _) = build_all(&big);
    let per_vec_small = mbi_small.index_memory_bytes() as f64 / 4_096.0;
    let per_vec_big = mbi_big.index_memory_bytes() as f64 / 16_384.0;
    let growth = per_vec_big / per_vec_small;
    assert!(growth < 2.5, "per-vector index cost grew {growth:.2}× over a 4× data increase");
    assert!(growth > 1.0, "per-vector cost should still grow (log levels)");
}
