//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! [`Bytes`] is a `Vec<u8>` plus a read cursor; [`BytesMut`] is an appendable
//! `Vec<u8>`. The `Buf`/`BufMut` traits carry the little-endian accessor
//! methods directly, as upstream does, so `use bytes::{Buf, BufMut}` brings
//! them into scope. No refcounted zero-copy splitting — `slice` copies —
//! which is irrelevant at this workspace's persistence sizes.

use std::ops::{Deref, Range};

macro_rules! buf_get_le {
    ($($name:ident -> $t:ty;)*) => {
        $(fn $name(&mut self) -> $t {
            let mut b = [0u8; std::mem::size_of::<$t>()];
            self.copy_to_slice(&mut b);
            <$t>::from_le_bytes(b)
        })*
    };
}

/// Read-side cursor methods.
///
/// # Panics
///
/// All `get_*`/`copy_to_slice` methods panic when fewer bytes remain than
/// requested, as upstream `bytes` does; length-check before reading.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    buf_get_le! {
        get_u16_le -> u16;
        get_u32_le -> u32;
        get_u64_le -> u64;
        get_i16_le -> i16;
        get_i32_le -> i32;
        get_i64_le -> i64;
        get_f32_le -> f32;
        get_f64_le -> f64;
    }
}

macro_rules! bufmut_put_le {
    ($($name:ident($t:ty);)*) => {
        $(fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        })*
    };
}

/// Write-side append methods.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    bufmut_put_le! {
        put_u16_le(u16);
        put_u32_le(u32);
        put_u64_le(u64);
        put_i16_le(i16);
        put_i32_le(i32);
        put_i64_le(i64);
        put_f32_le(f32);
        put_f64_le(f64);
    }
}

/// An immutable byte buffer with a consuming read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the unread content.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the sub-range `range` of the unread content into a new `Bytes`.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes::from(self.chunk()[range].to_vec())
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Copies (upstream borrows; irrelevant at these sizes).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.pos += n;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// An appendable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i64_le(-5);
        w.put_f32_le(1.5);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.len(), 1 + 4 + 8 + 4 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f32_le(), 1.5);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_eq_track_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        b.advance(1);
        assert_eq!(b.slice(0..2).to_vec(), vec![2, 3]);
        assert_eq!(b, Bytes::from(vec![2, 3, 4]));
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
