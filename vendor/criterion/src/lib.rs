//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Measures wall-clock mean per iteration and prints one line per benchmark:
//! no statistical analysis, HTML reports, or outlier detection. The API
//! subset matches this workspace's benches: `Criterion::default()` with
//! `sample_size`/`measurement_time`/`warm_up_time` builders, benchmark
//! groups, `bench_function`/`bench_with_input`, `BenchmarkId::new`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros
//! (both the named `name/config/targets` form and the positional form).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier; renders as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Accepts `&str`, `String`, or [`BenchmarkId`] as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Runs one closure under the group's timing settings and prints the mean.
pub struct Bencher<'a> {
    settings: &'a Settings,
    label: &'a str,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.settings.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }

        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let min_iters = self.settings.sample_size as u64;
        while iters < min_iters || elapsed < self.settings.measurement_time {
            let start = Instant::now();
            black_box(routine());
            elapsed += start.elapsed();
            iters += 1;
            if iters >= min_iters && elapsed >= self.settings.measurement_time {
                break;
            }
            // Keep slow benchmarks bounded: once past the time budget with at
            // least one sample, stop even below sample_size.
            if elapsed >= 4 * self.settings.measurement_time {
                break;
            }
        }

        let mean = elapsed.as_secs_f64() / iters as f64;
        println!("{:<50} time: {:>12}  ({} iters)", self.label, format_time(mean), iters);
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings, _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&self.settings, &id.into_id(), f);
        self
    }
}

/// A named group of related benchmarks sharing (possibly overridden)
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&self.settings, &label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&self.settings, &label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(settings: &Settings, label: &str, mut f: F) {
    let mut bencher = Bencher { settings, label };
    f(&mut bencher);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn group_runs_benches() {
        let mut c = tiny();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn top_level_bench_function() {
        tiny().bench_function("top", |b| b.iter(|| black_box(2 + 2)));
    }
}
