//! Offline stand-in for `parking_lot` (see `vendor/README.md`): [`RwLock`],
//! [`Mutex`], and [`Condvar`] with parking_lot's non-poisoning API, backed by
//! their `std::sync` counterparts. A panic while a guard is held does not
//! poison the lock for other threads — matching parking_lot semantics.

use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// Reader-writer lock with parking_lot's infallible `read`/`write` API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Mutual-exclusion lock with parking_lot's infallible `lock` API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard(Some(g))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard(Some(poisoned.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`] (std's wait consumes the guard).
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside Condvar::wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable usable with [`Mutex`], with parking_lot's
/// wait-by-mutable-reference API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside Condvar::wait");
        guard.0 = Some(self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside Condvar::wait");
        let (inner, res) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_for_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(!*g); // guard usable again after the timed wait
    }

    #[test]
    fn read_write_into_inner() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0, "lock still usable after a panic");
    }

    #[test]
    fn mutex_lock_try_lock_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        {
            let _g = m.lock();
            // Same-thread re-lock would deadlock; only check try_lock fails
            // from another thread.
        }
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "mutex still usable after a panic");
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
            *done
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }
}
