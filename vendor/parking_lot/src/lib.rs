//! Offline stand-in for `parking_lot` (see `vendor/README.md`): an
//! [`RwLock`] with parking_lot's non-poisoning API, backed by
//! `std::sync::RwLock`. A panic while a guard is held does not poison the
//! lock for other threads — matching parking_lot semantics.

use std::sync::{RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// Reader-writer lock with parking_lot's infallible `read`/`write` API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_into_inner() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0, "lock still usable after a panic");
    }
}
