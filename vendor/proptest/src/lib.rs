//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Supports the subset this workspace uses: the `proptest! { #[test] fn
//! name(pat in strategy, ...) { ... } }` block form with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header, strategies
//! over numeric ranges, `prop::collection::vec`, `any::<T>()`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberate: **no shrinking** (a failing case
//! reports its inputs via the panic message of the underlying `assert!`),
//! and case generation is a fixed deterministic stream per test (seeded from
//! the test's module path and name), so failures always reproduce.

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// FNV-1a over a string; seeds each test's stream from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values for one test argument.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream's `prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strategy.generate(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);

    #[inline]
    fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn unit_f32(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    macro_rules! int_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let v = rng.next_u64() as u128 % width;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let v = rng.next_u64() as u128 % width;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    macro_rules! float_range_strategy {
        ($($t:ty, $unit:ident;)*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + (self.end - self.start) * $unit(rng.next_u64())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    lo + (hi - lo) * $unit(rng.next_u64())
                }
            }
        )*};
    }

    float_range_strategy!(f32, unit_f32; f64, unit_f64;);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Marker for types `any::<T>()` can generate.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Full-domain generator: floats get raw bit patterns (NaN and
    /// infinities included), integers and bool the full range.
    pub struct Any<A> {
        _marker: std::marker::PhantomData<A>,
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any { _marker: std::marker::PhantomData }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_from_bits {
        ($($t:ty => $conv:expr;)*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    #[allow(clippy::redundant_closure_call)]
                    ($conv)(rng.next_u64())
                }
            }
        )*};
    }

    arbitrary_from_bits! {
        u8 => |b| b as u8;
        u16 => |b| b as u16;
        u32 => |b| b as u32;
        u64 => |b| b;
        usize => |b| b as usize;
        i8 => |b| b as i8;
        i16 => |b| b as i16;
        i32 => |b| b as i32;
        i64 => |b| b as i64;
        isize => |b| b as isize;
        bool => |b: u64| b & 1 == 1;
        f32 => |b: u64| f32::from_bits(b as u32);
        f64 => |b: u64| f64::from_bits(b);
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specifications `vec` accepts. Implemented only for `usize`
    /// ranges so unsuffixed literals (`0..600`) infer as `usize` instead of
    /// hitting integer fallback (upstream's `Into<SizeRange>` trick).
    pub trait IntoSizeRange {
        /// Returns inclusive `(lo, hi)` bounds.
        fn into_size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec length range");
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// `vec(element_strategy, length_range)`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = len.into_size_bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.hi - self.lo) as u64 + 1;
            let n = self.lo + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Choosing among explicit options (upstream's `prop::sample`).
    use super::strategy::Strategy;
    use super::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from no options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.next_u64() as usize % self.options.len()].clone()
        }
    }
}

pub mod test_runner {
    /// Per-block runner configuration; only `cases` is supported.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors upstream's `prelude::prop` module alias so
    /// `prop::collection::vec(...)` works after a glob import.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_seed(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// No shrinking here: these delegate to `assert!`, so a failure panics with
/// the formatted message immediately.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f32>> {
        prop::collection::vec(-10.0f32..10.0, 0..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vecs(x in 1usize..10, v in small_vec(), b in any::<bool>(), mut acc in 0u32..5) {
            prop_assert!(x >= 1 && x < 10);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|f| (-10.0..10.0).contains(f)));
            let _ = b;
            acc += 1;
            prop_assert_eq!(acc >= 1, true);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(y in -5i64..=5) {
            prop_assert!((-5..=5).contains(&y));
            prop_assert_ne!(y, 99);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn tuples_map_and_select(
            pair in (0usize..4, 10i64..20).prop_map(|(a, b)| (a, b + a as i64)),
            pick in prop::sample::select(vec![2u64, 3, 5, 7]),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..24).contains(&pair.1));
            prop_assert!([2, 3, 5, 7].contains(&pick));
        }
    }
}
