//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides the exact surface this workspace uses: `SmallRng` seeded via
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over numeric
//! `Range`/`RangeInclusive`. The generator is SplitMix64 — statistically fine
//! for test data and graph-build sampling, deterministic per seed (the
//! sequences differ from upstream `rand`, which this workspace never relies
//! on).

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, as in upstream `rand`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    // 24 high bits → [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_int_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

macro_rules! impl_float_range {
    ($($t:ty, $unit:ident;)*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * $unit(rng.next_u64())
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng.next_u64())
            }
        }
    )*};
}

impl_float_range!(f32, unit_f32; f64, unit_f64;);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — small, fast, deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(0usize..10);
            assert!(a < 10);
            let b = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&b));
            let c = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&d));
            let e = rng.gen_range(0u64..u64::MAX);
            assert!(e < u64::MAX);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
