//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! `Serialize` renders a value into an owned [`Value`] tree that
//! `serde_json` then prints; `Deserialize` is a marker trait (nothing in
//! this workspace deserialises through serde — binary persistence is
//! hand-rolled in `mbi-core`).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value — the stand-in's whole data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Field order is preserved (struct declaration order).
    Map(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait so `#[derive(Deserialize)]` compiles. Intentionally empty:
/// extend to a real data model if in-tree code ever deserialises via serde.
pub trait Deserialize: Sized {}

macro_rules! impl_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_int!(i8 i16 i32 i64 isize);
impl_uint!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for f32 {}
impl Deserialize for f64 {}
impl Deserialize for bool {}
impl Deserialize for String {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(0.5f32.to_value(), Value::Float(0.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Seq(vec![Value::UInt(1), Value::UInt(2)]));
    }
}
