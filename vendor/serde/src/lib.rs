//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! `Serialize` renders a value into an owned [`Value`] tree that
//! `serde_json` then prints; `Deserialize` is a marker trait (nothing in
//! this workspace deserialises through serde — binary persistence is
//! hand-rolled in `mbi-core`).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value — the stand-in's whole data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Field order is preserved (struct declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`]; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric content as `f64` ([`Value::Int`]/[`Value::UInt`]/
    /// [`Value::Float`]), else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric content as `i64` when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(x) if x.fract() == 0.0 && x.abs() < 2f64.powi(63) => Some(*x as i64),
            _ => None,
        }
    }

    /// The numeric content as `u64` when non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 2f64.powi(64) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string content of a [`Value::Str`], else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content of a [`Value::Bool`], else `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of a [`Value::Seq`], else `None`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait so `#[derive(Deserialize)]` compiles. Intentionally empty:
/// extend to a real data model if in-tree code ever deserialises via serde.
pub trait Deserialize: Sized {}

macro_rules! impl_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_int!(i8 i16 i32 i64 isize);
impl_uint!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for f32 {}
impl Deserialize for f64 {}
impl Deserialize for bool {}
impl Deserialize for String {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Map(vec![
            ("n".into(), Value::Int(-3)),
            ("u".into(), Value::UInt(7)),
            ("x".into(), Value::Float(1.5)),
            ("s".into(), Value::Str("hi".into())),
            ("b".into(), Value::Bool(true)),
            ("seq".into(), Value::Seq(vec![Value::UInt(1)])),
            ("nil".into(), Value::Null),
        ]);
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("u").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("u").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("x").unwrap().as_i64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("seq").unwrap().as_seq().unwrap().len(), 1);
        assert!(v.get("nil").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("k").is_none());
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn primitives_render() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(0.5f32.to_value(), Value::Float(0.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Seq(vec![Value::UInt(1), Value::UInt(2)]));
    }
}
