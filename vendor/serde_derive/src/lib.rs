//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` with a
//! hand-rolled token walk (no `syn`/`quote` available offline). Supported
//! shapes — exactly what this workspace declares:
//!
//! * non-generic structs with named fields;
//! * non-generic enums whose variants are unit or 1-tuple.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, bool)> }, // (name, has_payload)
}

/// Skips an attribute (`#` + bracket group, or `#![..]`) starting at `i`;
/// returns the index just past it, or `i` if not at an attribute.
fn skip_attr(tokens: &[TokenTree], i: usize) -> usize {
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '#' {
            let mut j = i + 1;
            if let Some(TokenTree::Punct(q)) = tokens.get(j) {
                if q.as_char() == '!' {
                    j += 1;
                }
            }
            if matches!(tokens.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                return j + 1;
            }
        }
    }
    i
}

fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        let j = skip_attr(tokens, i);
        if j != i {
            i = j;
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                // `pub(crate)` / `pub(super)` etc.
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
        }
        return i;
    }
}

fn parse(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected `struct`/`enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => panic!("serde stand-in derive: `{name}` has no brace-delimited body"),
        }
    };
    let body: Vec<TokenTree> = body.stream().into_iter().collect();
    match kind.as_str() {
        "struct" => Shape::Struct { name, fields: parse_struct_fields(&body) },
        "enum" => Shape::Enum { name, variants: parse_enum_variants(&body) },
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    }
}

fn parse_struct_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(field)) = body.get(i) else {
            break;
        };
        fields.push(field.to_string());
        i += 1;
        assert!(
            matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde stand-in derive: only named-field structs are supported"
        );
        // Skip the type up to the next top-level comma (angle-bracket aware).
        let mut angle = 0i32;
        while let Some(t) = body.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
    }
    fields
}

fn parse_enum_variants(body: &[TokenTree]) -> Vec<(String, bool)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(variant)) = body.get(i) else {
            break;
        };
        i += 1;
        let mut payload = false;
        if let Some(TokenTree::Group(g)) = body.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    payload = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde stand-in derive: struct enum variants are not supported")
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while let Some(t) = body.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1;
        variants.push((variant.to_string(), payload));
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(x) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x))]),"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse(input) {
        Shape::Struct { name, .. } | Shape::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}").parse().expect("generated impl parses")
}
