//! Offline stand-in for `serde_json` (see `vendor/README.md`): renders the
//! serde stand-in's [`serde::Value`] tree as JSON text, and parses JSON text
//! back into a [`serde::Value`] tree ([`from_str`]) for the network server's
//! request bodies. There is no typed `Deserialize` path — callers walk the
//! `Value` with its accessor methods.

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation/parse error. The stand-in serialiser is total, so only
/// [`from_str`] produces these today (offset + what was wrong there).
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, detail: impl Into<String>) -> Error {
        Error(format!("json parse error at byte {offset}: {}", detail.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty JSON (2-space indent, `": "` separators).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree. Strict on structure (rejects
/// trailing garbage, unterminated strings, malformed numbers) but
/// intentionally small: no depth limit beyond [`MAX_DEPTH`], numbers parse
/// to `Int`/`UInt` when integral and `Float` otherwise.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters after value"));
    }
    Ok(v)
}

/// Nesting limit of [`from_str`] — deep enough for any sane request body,
/// shallow enough that hostile input cannot blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(self.pos, format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(depth),
            Some(b'{') => self.map(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::parse(self.pos, format!("unexpected {:?}", b as char))),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn seq(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn map(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::parse(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled (the
                            // workspace never emits them); lone surrogates
                            // map to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::parse(
                                self.pos - 1,
                                format!("unknown escape {:?}", other as char),
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing on
                    // the next char boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse(self.pos, "invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(start, format!("bad number {text:?}")))
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` on f64 prints the shortest roundtrip form but elides
                // the decimal point for integral values; JSON readers treat
                // both as numbers, so plain Display is fine here.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null"); // matches serde_json's lossy default
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth, '[', ']', |o, it, ind, d| {
            write_value(o, it, ind, d)
        }),
        Value::Map(entries) => {
            write_seq(out, entries, indent, depth, '{', '}', |o, (k, val), ind, d| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    items: &[T],
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, &T, Option<usize>, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str("0.5").unwrap(), Value::Float(0.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_handles_structures_and_escapes() {
        let v = from_str(r#"{"q": [0.5, -1, 2], "k": 10, "s": "a\"b\n\u0041"}"#).unwrap();
        assert_eq!(
            v.get("q").unwrap().as_seq().unwrap(),
            &[Value::Float(0.5), Value::Int(-1), Value::UInt(2)]
        );
        assert_eq!(v.get("k").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\nA"));
        assert_eq!(from_str("[]").unwrap(), Value::Seq(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Map(vec![]));
        // Nested with unicode passthrough.
        let v = from_str("{\"é\": [\"ü\"]}").unwrap();
        assert_eq!(v.get("é").unwrap().as_seq().unwrap()[0].as_str(), Some("ü"));
    }

    #[test]
    fn parse_preserves_key_order() {
        let v = from_str(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let Value::Map(entries) = v else { panic!("expected map") };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "\"abc",
            "1 2",
            "{\"a\":1,}x",
            "[1]]",
            "\"\\q\"",
        ] {
            let err = from_str(bad).expect_err(bad);
            assert!(err.to_string().contains("json parse error at byte"), "{err}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&deep).unwrap_err().to_string().contains("nesting too deep"));
    }

    #[test]
    fn parse_roundtrips_serialised_output() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("tenant-a".into())),
            ("p99".into(), Value::Float(1.25)),
            ("count".into(), Value::UInt(3)),
            ("tail".into(), Value::Seq(vec![Value::Int(-1), Value::Null])),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&W(v.clone())).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&W(v.clone())).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn pretty_matches_expected_shape() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Float(0.5), Value::Float(0.25)])),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&W(v)).unwrap();
        assert!(text.contains("\"a\": 1"), "{text}");
        assert!(text.contains("0.25"), "{text}");
        let compact = to_string(&W(Value::Str("x\"y".into()))).unwrap();
        assert_eq!(compact, "\"x\\\"y\"");
    }
}
