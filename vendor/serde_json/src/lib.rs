//! Offline stand-in for `serde_json` (see `vendor/README.md`): renders the
//! serde stand-in's [`serde::Value`] tree as JSON text. Only serialisation is
//! provided — nothing in this workspace parses JSON.

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error. The stand-in serialiser is total, so this is never
/// produced today; the type exists for signature compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty JSON (2-space indent, `": "` separators).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` on f64 prints the shortest roundtrip form but elides
                // the decimal point for integral values; JSON readers treat
                // both as numbers, so plain Display is fine here.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null"); // matches serde_json's lossy default
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth, '[', ']', |o, it, ind, d| {
            write_value(o, it, ind, d)
        }),
        Value::Map(entries) => {
            write_seq(out, entries, indent, depth, '{', '}', |o, (k, val), ind, d| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    items: &[T],
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, &T, Option<usize>, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_expected_shape() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Float(0.5), Value::Float(0.25)])),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&W(v)).unwrap();
        assert!(text.contains("\"a\": 1"), "{text}");
        assert!(text.contains("0.25"), "{text}");
        let compact = to_string(&W(Value::Str("x\"y".into()))).unwrap();
        assert_eq!(compact, "\"x\\\"y\"");
    }
}
